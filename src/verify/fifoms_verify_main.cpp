// fifoms_verify: bounded exhaustive model checker for FIFOMS.
//
// Explores every switch state reachable from the empty switch (under the
// configured radix and queue-depth bound), checks the five FIFOMS
// properties on each, and prints state-space statistics.  On a violation
// it prints the counterexample — the exact arrival trace from the empty
// switch plus a replayable state dump — and exits 1.
//
//   fifoms_verify --preset full2x2          # exhaustive 2x2 fixpoint
//   fifoms_verify --preset ci               # CI lane: 2x2 + bounded 3x3
//   fifoms_verify --ports 3 --depth 2       # custom bounds
//   fifoms_verify --mutate single-round     # prove the verifier's teeth
//   fifoms_verify --ports 2 --depth 3 --replay "3,0;1,2"
#include <cinttypes>
#include <cstdio>
#include <string>

#include "io/cli.hpp"
#include "verify/explorer.hpp"

namespace fifoms::verify {
namespace {

void print_counterexample(const CounterExample& counterexample) {
  std::printf("counterexample trace (arrival masks per slot): \"%s\"\n",
              encode_trace(counterexample.trace).c_str());
  for (const Violation& violation : counterexample.violations) {
    std::printf("  violated %-19s %s\n", property_name(violation.property),
                violation.detail.c_str());
    std::printf("    in state [%016" PRIx64 "] %s\n", violation.state_hash,
                violation.state.to_string().c_str());
  }
}

ExplorerOptions make_replay_options(const ExplorerOptions& base) {
  ExplorerOptions options = base;
  options.check_starvation = false;
  return options;
}

/// Run one configuration; returns true when no property was violated.
bool run_config(const ExplorerOptions& options, bool print_trace_replay) {
  std::printf(
      "== %dx%d switch, depth<=%d, scheduler=%s, max_slots=%d, "
      "max_states=%" PRIu64 " ==\n",
      options.ports, options.ports, options.max_packets_per_input,
      std::string(mutation_name(options.mutation)).c_str(), options.max_slots,
      options.max_states);

  Explorer explorer(options);
  const ExplorerResult result = explorer.run();
  const ExplorerStats& stats = result.stats;

  std::printf("canonical states checked : %" PRIu64 "\n",
              stats.canonical_states);
  std::printf("post-service states      : %" PRIu64 "\n",
              stats.service_states);
  std::printf("transitions traversed    : %" PRIu64 "\n", stats.transitions);
  std::printf("symmetry dedup hits      : %" PRIu64 "\n", stats.dedup_hits);
  if (stats.fault_checks > 0)
    std::printf("fault transitions checked: %" PRIu64 "\n",
                stats.fault_checks);
  std::printf("frontier depth (slots)   : %d\n", stats.frontier_slots);
  std::printf("exploration complete     : %s\n",
              stats.complete ? "yes (fixpoint)" : "no (bounded)");
  if (stats.starvation_bound >= 0)
    std::printf("starvation bound (slots) : %" PRId64 "\n",
                stats.starvation_bound);

  if (result.ok()) {
    std::printf("all properties hold on every explored state\n\n");
    return true;
  }
  std::printf("%zu counterexample(s) found:\n", result.counterexamples.size());
  for (const CounterExample& counterexample : result.counterexamples) {
    print_counterexample(counterexample);
    if (print_trace_replay) {
      const ReplayResult replay =
          replay_trace(make_replay_options(options), counterexample.trace);
      std::printf("replay:\n%s", replay.log.c_str());
    }
  }
  std::printf("\n");
  return false;
}

int verify_main(int argc, char** argv) {
  ArgParser args("fifoms_verify",
                 "Bounded exhaustive model checker for the FIFOMS "
                 "scheduler: explores every reachable small-switch state "
                 "and checks matching maximality, no-accept safety, "
                 "timestamp service order, bounded starvation and "
                 "hardware/behavioural equivalence.");
  args.add_string("preset", "",
                  "named configuration: 'full2x2' (exhaustive 2x2 fixpoint) "
                  "or 'ci' (full2x2 plus depth-bounded 3x3); overrides "
                  "--ports/--depth/--max-slots/--max-states");
  args.add_int("ports", 2, "switch radix N for the NxN switch (2..4)");
  args.add_int("depth", 4, "max queued packets per input (arrival bound)");
  args.add_int("max-states", 0,
               "stop after storing this many post-service states (0 = off)");
  args.add_int("max-slots", 0, "BFS depth bound in slots (0 = fixpoint)");
  args.add_bool("starvation", true,
                "check bounded starvation (needs a complete exploration)");
  args.add_bool("equivalence", true,
                "check hw::FifomsControlUnit equivalence on every state");
  args.add_bool("fault-transitions", false,
                "re-schedule every fresh state once per single downed "
                "output and check the degraded matching (property f)");
  args.add_string("mutate", "none",
                  "scheduler fault to inject: none, "
                  "highest-input-tiebreak, single-round, youngest-first, "
                  "ignore-timestamps");
  args.add_string("replay", "",
                  "replay an arrival trace (e.g. \"3,0;1,2\") instead of "
                  "exploring; slot-by-slot log on stdout");
  args.add_int("counterexamples", 1, "stop after this many counterexamples");
  if (!args.parse(argc, argv)) return 2;

  ExplorerOptions options;
  options.ports = static_cast<int>(args.get_int("ports"));
  options.max_packets_per_input = static_cast<int>(args.get_int("depth"));
  options.max_states = static_cast<std::uint64_t>(args.get_int("max-states"));
  options.max_slots = static_cast<int>(args.get_int("max-slots"));
  options.check_starvation = args.get_bool("starvation");
  options.check_equivalence = args.get_bool("equivalence");
  options.check_fault_transitions = args.get_bool("fault-transitions");
  options.max_counterexamples =
      static_cast<int>(args.get_int("counterexamples"));
  if (options.ports < 2 || options.ports > 4) {
    std::fprintf(stderr, "fifoms_verify: --ports must be 2..4\n");
    return 2;
  }

  const auto mutation = parse_mutation(args.get_string("mutate"));
  if (!mutation) {
    std::fprintf(stderr, "fifoms_verify: unknown --mutate '%s'\n",
                 args.get_string("mutate").c_str());
    return 2;
  }
  options.mutation = *mutation;

  if (!args.get_string("replay").empty()) {
    Trace trace;
    if (!decode_trace(args.get_string("replay"), options.ports, trace)) {
      std::fprintf(stderr,
                   "fifoms_verify: malformed --replay trace for a %dx%d "
                   "switch: '%s'\n",
                   options.ports, options.ports,
                   args.get_string("replay").c_str());
      return 2;
    }
    const ReplayResult replay =
        replay_trace(make_replay_options(options), trace);
    std::printf("%s", replay.log.c_str());
    if (!replay.violations.empty()) {
      std::printf("replay reproduced %zu violation(s)\n",
                  replay.violations.size());
      return 1;
    }
    std::printf("replay clean: no property violated along the trace\n");
    return 0;
  }

  const std::string& preset = args.get_string("preset");
  bool ok = true;
  if (preset.empty()) {
    ok = run_config(options, /*print_trace_replay=*/true);
  } else if (preset == "full2x2") {
    ExplorerOptions full = options;
    full.ports = 2;
    full.max_packets_per_input = 4;
    full.max_slots = 0;
    full.max_states = 0;
    full.check_fault_transitions = true;
    ok = run_config(full, /*print_trace_replay=*/true);
  } else if (preset == "ci") {
    ExplorerOptions full = options;
    full.ports = 2;
    full.max_packets_per_input = 4;
    full.max_slots = 0;
    full.max_states = 0;
    full.check_fault_transitions = true;
    ok = run_config(full, /*print_trace_replay=*/true);

    ExplorerOptions bounded = options;
    bounded.ports = 3;
    bounded.max_packets_per_input = 2;
    bounded.max_slots = 4;
    bounded.max_states = 0;
    bounded.check_starvation = false;  // bounded run: no fixpoint, no (d)
    ok = run_config(bounded, /*print_trace_replay=*/true) && ok;
  } else {
    std::fprintf(stderr, "fifoms_verify: unknown --preset '%s'\n",
                 preset.c_str());
    return 2;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace fifoms::verify

int main(int argc, char** argv) {
  return fifoms::verify::verify_main(argc, argv);
}
