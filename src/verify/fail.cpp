#include "verify/fail.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/panic.hpp"

namespace fifoms::verify {

void verify_panic(const char* file, int line, std::uint64_t state_hash,
                  std::string_view message) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "verify failure in state %016" PRIx64
                                        ": ",
                state_hash);
  std::string full = prefix;
  full.append(message);
  panic(file, line, full);  // fifoms-lint: allow(verify-panic-state-hash)
}

}  // namespace fifoms::verify
