// Fault-injection schedulers for the bounded verifier.
//
// Each mutant is FIFOMS with one deliberate bug.  They exist purely to
// prove the verifier's teeth: tests/verify/ runs the explorer over every
// mutant and demands a counterexample trace, and `fifoms_verify --mutate`
// reproduces those traces interactively.  Never wire a mutant into a
// simulation result.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "sched/voq_scheduler.hpp"

namespace fifoms::verify {

enum class Mutation {
  kNone,                 ///< pristine FIFOMS, lowest-input tie-break
  kHighestInputTieBreak, ///< outputs break stamp ties toward the highest
                         ///< input — still a valid FIFOMS, but disagrees
                         ///< with the hardware's fixed priority wire (e)
  kSingleRound,          ///< stop after one request/grant round —
                         ///< matchings stop being maximal (a)
  kYoungestFirst,        ///< outputs grant the LARGEST requested stamp —
                         ///< the globally oldest cell loses (c)
  kIgnoreTimestamps,     ///< outputs grab the lowest input with a
                         ///< non-empty VOQ, bypassing the request step —
                         ///< one input gets asked for two data cells (b)
};

std::string_view mutation_name(Mutation mutation);
std::optional<Mutation> parse_mutation(std::string_view name);

/// Scheduler under test for the given mutation.  kNone returns the real
/// FifomsScheduler with TieBreak::kLowestInput.
std::unique_ptr<VoqScheduler> make_mutant_scheduler(Mutation mutation);

}  // namespace fifoms::verify
