#include "verify/properties.hpp"

namespace fifoms::verify {

namespace {

std::string port_pair(PortId input, PortId output) {
  return "input " + std::to_string(input) + ", output " +
         std::to_string(output);
}

}  // namespace

const char* property_name(Property property) {
  switch (property) {
    case Property::kMaximalMatching:
      return "maximal-matching";
    case Property::kNoAcceptSafety:
      return "no-accept-safety";
    case Property::kTimestampOrder:
      return "timestamp-order";
    case Property::kBoundedStarvation:
      return "bounded-starvation";
    case Property::kHwEquivalence:
      return "hw-equivalence";
    case Property::kFaultMasking:
      return "fault-masking";
  }
  return "unknown";
}

int check_matching_properties(const SwitchState& state,
                              const SlotMatching& matching,
                              std::vector<Violation>& out) {
  const int ports = state.ports();
  const std::uint64_t state_hash = state.hash();
  int found = 0;
  auto report = [&](Property property, std::string detail) {
    out.push_back(Violation{property, std::move(detail), state_hash, state});
    ++found;
  };

  // --- (b) no-accept-step safety -------------------------------------
  // Every grant must reference a queued address cell, and all grants of
  // one input must reference the same packet (equal HOL stamps suffice:
  // stamps are unique within an input).  This is the paper's argument for
  // dropping iSLIP's accept step — the crossbar broadcasts a single data
  // cell per input row, so two different cells would be unsendable.
  std::vector<std::uint32_t> served_stamp(static_cast<std::size_t>(ports),
                                          SwitchState::kNoStamp);
  for (PortId input = 0; input < ports; ++input) {
    for (PortId output : matching.grants(input)) {
      const PacketState* cell = state.hol(input, output);
      if (cell == nullptr) {
        report(Property::kNoAcceptSafety,
               "grant references an empty VOQ (" + port_pair(input, output) +
                   ")");
        continue;
      }
      auto& stamp = served_stamp[static_cast<std::size_t>(input)];
      if (stamp == SwitchState::kNoStamp) {
        stamp = cell->stamp;
      } else if (stamp != cell->stamp) {
        report(Property::kNoAcceptSafety,
               "input " + std::to_string(input) +
                   " granted two different data cells (stamps " +
                   std::to_string(stamp) + " and " +
                   std::to_string(cell->stamp) + ")");
      }
    }
  }

  // --- (a) maximal matching ------------------------------------------
  // After convergence no free input may still hold a cell for a free
  // output; otherwise another request/grant round would have matched it.
  for (PortId input = 0; input < ports; ++input) {
    if (matching.input_matched(input)) continue;
    for (PortId output = 0; output < ports; ++output) {
      if (matching.output_matched(output)) continue;
      if (state.hol(input, output) != nullptr)
        report(Property::kMaximalMatching,
               "free pair with a waiting cell (" + port_pair(input, output) +
                   ")");
    }
  }

  // --- (c) timestamp service order ------------------------------------
  // (c1) Global-minimum service: let W be the smallest stamp of any HOL
  // cell.  Every output whose own HOL minimum equals W must serve stamp W
  // this slot — the W-holder's input requests it in round one and no
  // smaller request can exist.  (Pairwise per-output ordering is NOT
  // invariant; see docs/VERIFICATION.md for the three-port
  // counterexample.)
  std::uint32_t global_min = SwitchState::kNoStamp;
  for (PortId input = 0; input < ports; ++input)
    global_min = std::min(global_min, state.front_stamp(input));
  for (PortId output = 0; output < ports && global_min != SwitchState::kNoStamp;
       ++output) {
    std::uint32_t output_min = SwitchState::kNoStamp;
    for (PortId input = 0; input < ports; ++input) {
      const PacketState* cell = state.hol(input, output);
      if (cell != nullptr) output_min = std::min(output_min, cell->stamp);
    }
    if (output_min != global_min) continue;
    const PortId source = matching.source(output);
    const PacketState* served =
        source == kNoPort ? nullptr : state.hol(source, output);
    if (served == nullptr || served->stamp != global_min)
      report(Property::kTimestampOrder,
             "output " + std::to_string(output) +
                 " holds the globally oldest stamp " +
                 std::to_string(global_min) + " but served " +
                 (served == nullptr ? std::string("nothing")
                                    : std::to_string(served->stamp)));
  }

  // (c2) Matched-input dominance: a matched input serves the minimum
  // stamp over the outputs that were free when it won, so any output
  // that stays free to the end of the slot bounds the served stamp from
  // below.
  for (PortId input = 0; input < ports; ++input) {
    const std::uint32_t stamp = served_stamp[static_cast<std::size_t>(input)];
    if (stamp == SwitchState::kNoStamp) continue;
    for (PortId output = 0; output < ports; ++output) {
      if (matching.output_matched(output)) continue;
      const PacketState* cell = state.hol(input, output);
      if (cell != nullptr && cell->stamp < stamp)
        report(Property::kTimestampOrder,
               "input " + std::to_string(input) + " served stamp " +
                   std::to_string(stamp) + " although its older stamp " +
                   std::to_string(cell->stamp) + " for the end-free output " +
                   std::to_string(output) + " was available all slot");
    }
  }

  return found;
}

int check_fault_masking(const SwitchState& state, const SlotMatching& matching,
                        const PortSet& failed_outputs,
                        std::vector<Violation>& out) {
  const int ports = state.ports();
  const std::uint64_t state_hash = state.hash();
  int found = 0;
  auto report = [&](std::string detail) {
    out.push_back(Violation{Property::kFaultMasking, std::move(detail),
                            state_hash, state});
    ++found;
  };

  // No grant may name a dead output, and (as in property (b)) every grant
  // must reference a queued address cell — a dead-output grant that also
  // points at an empty VOQ should still read as a masking failure.
  for (PortId input = 0; input < ports; ++input) {
    for (PortId output : matching.grants(input)) {
      if (failed_outputs.contains(output))
        report("grant to failed output (" + port_pair(input, output) + ")");
      if (state.hol(input, output) == nullptr)
        report("grant references an empty VOQ under faults (" +
               port_pair(input, output) + ")");
    }
  }

  // Degraded maximality: the scheduler must keep matching over the live
  // outputs exactly as it would without the fault — a free input with a
  // waiting cell for a free LIVE output means it wedged instead of
  // degrading.
  for (PortId input = 0; input < ports; ++input) {
    if (matching.input_matched(input)) continue;
    for (PortId output = 0; output < ports; ++output) {
      if (failed_outputs.contains(output)) continue;
      if (matching.output_matched(output)) continue;
      if (state.hol(input, output) != nullptr)
        report("free pair with a waiting cell on a live output (" +
               port_pair(input, output) + ")");
    }
  }

  return found;
}

int check_equivalence(const SwitchState& state, const SlotMatching& sw,
                      const SlotMatching& hw, std::vector<Violation>& out) {
  const int ports = state.ports();
  const std::uint64_t state_hash = state.hash();
  int found = 0;
  auto report = [&](std::string detail) {
    out.push_back(Violation{Property::kHwEquivalence, std::move(detail),
                            state_hash, state});
    ++found;
  };

  for (PortId output = 0; output < ports; ++output) {
    if (sw.source(output) != hw.source(output))
      report("output " + std::to_string(output) + ": behavioural source " +
             std::to_string(sw.source(output)) + " vs hardware source " +
             std::to_string(hw.source(output)));
  }
  if (sw.rounds != hw.rounds)
    report("round count: behavioural " + std::to_string(sw.rounds) +
           " vs hardware " + std::to_string(hw.rounds));
  return found;
}

}  // namespace fifoms::verify
