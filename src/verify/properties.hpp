// Property engine for the bounded exhaustive verifier.
//
// Checks the paper's universally-quantified claims on one (state,
// matching) pair; the explorer applies them to every reachable state, the
// fuzz harnesses to arbitrary decoded states.  The exact property
// statements — and in particular why "an output never serves a cell when
// a strictly older HOL cell for it exists anywhere" is deliberately NOT
// among them (it is false even for correct FIFOMS) — are derived in
// docs/VERIFICATION.md.
#pragma once

#include <string>
#include <vector>

#include "core/matching.hpp"
#include "verify/state.hpp"

namespace fifoms::verify {

enum class Property {
  kMaximalMatching,    ///< (a) no free input/free output pair with a
                       ///<     non-empty VOQ survives the slot
  kNoAcceptSafety,     ///< (b) all grants to one input reference one data
                       ///<     cell, and only queued cells are granted
  kTimestampOrder,     ///< (c) global-minimum stamps win everywhere they
                       ///<     compete; matched inputs never skip an older
                       ///<     own cell whose output stayed free
  kBoundedStarvation,  ///< (d) every front packet departs within a bound
                       ///<     (explorer-wide fixpoint, not per-slot)
  kHwEquivalence,      ///< (e) hw::FifomsControlUnit computes bit-exactly
                       ///<     the behavioural kLowestInput matching
  kFaultMasking,       ///< (f) under a failed-output constraint no grant
                       ///<     names a dead output, and the matching stays
                       ///<     maximal over the live outputs
};

const char* property_name(Property property);

struct Violation {
  Property property;
  std::string detail;        ///< human-readable failure description
  std::uint64_t state_hash;  ///< canonical hash of the state checked
  SwitchState state;         ///< the (post-arrival) state checked
};

/// Check per-slot properties (a), (b), (c) of `matching` against `state`
/// (the queue state the scheduler saw).  Appends one Violation per
/// failure; returns the number appended.
int check_matching_properties(const SwitchState& state,
                              const SlotMatching& matching,
                              std::vector<Violation>& out);

/// Property (e): `hw` must equal `sw` output-for-output, including the
/// round count.  Appends one Violation per differing port.
int check_equivalence(const SwitchState& state, const SlotMatching& sw,
                      const SlotMatching& hw, std::vector<Violation>& out);

/// Property (f): `matching` was produced under a ScheduleConstraints with
/// `failed_outputs` down.  No grant may name a dead output, every grant
/// must reference a queued cell, and maximality must still hold over the
/// live outputs — degradation, not a wedge.  Appends one Violation per
/// failure; returns the number appended.
int check_fault_masking(const SwitchState& state, const SlotMatching& matching,
                        const PortSet& failed_outputs,
                        std::vector<Violation>& out);

}  // namespace fifoms::verify
