// Bounded exhaustive explorer: model-checks the FIFOMS properties over
// every switch state reachable from the empty switch under adversarial
// arrivals (any destination set per input per slot), with two finiteness
// bounds — a per-input queue-depth cap and the stamp-symmetry quotient of
// verify::SwitchState.
//
// The transition system alternates arrival and service phases exactly
// like VoqSwitch::step: from a canonical post-service state, every
// arrival vector within the depth bound yields a post-arrival state; the
// scheduler under test produces its matching there (that is where
// properties (a), (b), (c) and (e) are checked), and applying the
// matching yields the canonical successor.  Property (d) — bounded
// starvation — is a fixpoint over the finished graph: for every state
// and every input, the input's front packet must depart within finitely
// many slots on EVERY adversarial arrival path; the maximum over the
// graph is the reported starvation bound.
//
// Every violation comes with a replayable counterexample: the exact
// arrival-vector sequence from the empty switch, re-executable with
// replay_trace() or `fifoms_verify --replay`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/port_set.hpp"
#include "hw/fifoms_control_unit.hpp"
#include "verify/mutants.hpp"
#include "verify/properties.hpp"
#include "verify/state.hpp"

namespace fifoms::verify {

/// One slot's adversarial arrival decision: destination set per input
/// (empty set = no arrival at that input).
using ArrivalVector = std::vector<PortSet>;

/// Arrival sequence from the empty switch — the replayable seed of every
/// counterexample.
using Trace = std::vector<ArrivalVector>;

/// "3,0;1,2" — per-slot arrival vectors joined by ';', per-input
/// destination bitmasks in hex joined by ','.
std::string encode_trace(const Trace& trace);
bool decode_trace(std::string_view text, int ports, Trace& out);

struct ExplorerOptions {
  int ports = 2;                 ///< switch radix (2..4; 2-3 practical)
  int max_packets_per_input = 4; ///< queue-depth bound (arrivals beyond
                                 ///< it are pruned from the adversary)
  std::uint64_t max_states = 0;  ///< abort bound on stored states; 0 = off
  int max_slots = 0;             ///< BFS depth bound; 0 = run to fixpoint
  bool check_starvation = true;  ///< property (d); needs a complete run
  bool check_equivalence = true; ///< property (e) against the hw unit
  bool check_fault_transitions = false;  ///< property (f): re-run every
                                         ///< fresh post-arrival state with
                                         ///< each single output down
  int max_counterexamples = 1;   ///< stop after this many failing states
  Mutation mutation = Mutation::kNone;  ///< scheduler under test
};

struct CounterExample {
  Trace trace;                        ///< arrivals reproducing the state
  std::vector<Violation> violations;  ///< everything wrong with it
};

struct ExplorerStats {
  std::uint64_t canonical_states = 0;  ///< distinct post-arrival states
                                       ///< property-checked
  std::uint64_t service_states = 0;    ///< distinct post-service states
  std::uint64_t transitions = 0;       ///< arrival branches traversed
  std::uint64_t dedup_hits = 0;        ///< branches folded by the quotient
  std::uint64_t fault_checks = 0;      ///< single-output-down slots checked
                                       ///< for property (f)
  int frontier_slots = 0;              ///< deepest BFS layer reached
  bool complete = false;               ///< fixpoint reached within bounds
  std::int64_t starvation_bound = -1;  ///< property (d) bound; -1 = not
                                       ///< computed
};

struct ExplorerResult {
  ExplorerStats stats;
  std::vector<CounterExample> counterexamples;

  bool ok() const { return counterexamples.empty(); }
};

/// Runs one slot of the scheduler under test on explicit queue states;
/// shared by the explorer, replay_trace and the fuzz harnesses.
class SlotEngine {
 public:
  SlotEngine(int ports, Mutation mutation, bool check_equivalence);

  struct Outcome {
    SlotMatching matching;           ///< scheduler under test's decision
    SwitchState next;                ///< canonical post-service successor
    std::uint32_t departed_mask = 0; ///< inputs whose front packet left
  };

  /// Schedule one slot on canonical post-arrival `state`; check
  /// properties (a), (b), (c) and optionally (e); fill `outcome`.
  /// `outcome.next` is only valid when no violation was appended.
  /// Returns the number of violations appended.
  int step(const SwitchState& state, Outcome& outcome,
           std::vector<Violation>& violations);

  /// Schedule one slot on `state` with `failed_outputs` constrained down
  /// and check property (f) — no grant to a dead output, maximality over
  /// the live outputs.  Draws from a dedicated RNG stream so interleaved
  /// fault checks never perturb the deterministic step() sequence.  The
  /// transition is checked, not expanded: faults do not grow the state
  /// graph.  Returns the number of violations appended.
  int step_with_fault(const SwitchState& state, const PortSet& failed_outputs,
                      SlotMatching& matching,
                      std::vector<Violation>& violations);

 private:
  int ports_;
  bool check_equivalence_;
  std::unique_ptr<VoqScheduler> scheduler_;
  hw::FifomsControlUnit hw_;
  std::vector<McVoqInput> scratch_ports_;
  SlotMatching hw_matching_;
  Rng rng_;
  Rng fault_rng_;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options);

  ExplorerResult run();

 private:
  ExplorerOptions options_;
};

/// Re-execute a counterexample trace slot by slot from the empty switch,
/// collecting every violation and a human-readable per-slot log.
struct ReplayResult {
  std::vector<Violation> violations;
  std::string log;
};
ReplayResult replay_trace(const ExplorerOptions& options, const Trace& trace);

}  // namespace fifoms::verify
