#include "verify/mutants.hpp"

#include <limits>
#include <vector>

#include "core/fifoms.hpp"

namespace fifoms::verify {

namespace {

constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();

/// FIFOMS request/grant loop with selectable faults.  Mirrors
/// FifomsScheduler::schedule closely on purpose: the interesting part is
/// the single twisted decision, not a rewrite.
class MutantFifoms final : public VoqScheduler {
 public:
  explicit MutantFifoms(Mutation mutation) : mutation_(mutation) {}

  std::string_view name() const override { return "FIFOMS-mutant"; }

  void reset(int /*num_inputs*/, int num_outputs) override {
    best_.assign(static_cast<std::size_t>(num_outputs), kInfinity);
    candidates_.assign(static_cast<std::size_t>(num_outputs), {});
  }

  using VoqScheduler::schedule;
  // Mutants deliberately ignore the fault constraints: a mutant that also
  // grants dead outputs is exactly what the kFaultMasking property must
  // catch, and the fault-free explorer passes empty constraints anyway.
  void schedule(std::span<const McVoqInput> inputs, SlotTime /*now*/,
                SlotMatching& matching, Rng& /*rng*/,
                const ScheduleConstraints& /*constraints*/) override {
    const int num_inputs = static_cast<int>(inputs.size());
    const int num_outputs = matching.num_outputs();

    if (mutation_ == Mutation::kIgnoreTimestamps) {
      // Bypass the request step entirely: every output grabs the lowest
      // input holding any cell for it.  Violates no-accept safety — two
      // outputs can pick different packets of the same input.
      for (PortId output = 0; output < num_outputs; ++output) {
        for (PortId input = 0; input < num_inputs; ++input) {
          if (inputs[static_cast<std::size_t>(input)].voq_empty(output))
            continue;
          matching.add_match(input, output);
          break;
        }
      }
      matching.rounds = matching.matched_pairs() > 0 ? 1 : 0;
      return;
    }

    int rounds = 0;
    while (true) {
      bool any_request = false;
      for (PortId output = 0; output < num_outputs; ++output) {
        best_[static_cast<std::size_t>(output)] =
            mutation_ == Mutation::kYoungestFirst ? 0 : kInfinity;
        candidates_[static_cast<std::size_t>(output)].clear();
      }

      for (PortId input = 0; input < num_inputs; ++input) {
        if (matching.input_matched(input)) continue;
        const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
        std::uint64_t smallest = kInfinity;
        for (PortId output = 0; output < num_outputs; ++output) {
          if (matching.output_matched(output) || port.voq_empty(output))
            continue;
          smallest = std::min(smallest, port.hol(output).weight);
        }
        if (smallest == kInfinity) continue;

        for (PortId output = 0; output < num_outputs; ++output) {
          if (matching.output_matched(output) || port.voq_empty(output))
            continue;
          if (port.hol(output).weight != smallest) continue;
          any_request = true;
          auto& best = best_[static_cast<std::size_t>(output)];
          auto& cands = candidates_[static_cast<std::size_t>(output)];
          const bool wins = mutation_ == Mutation::kYoungestFirst
                                ? smallest > best || cands.empty()
                                : smallest < best;
          if (wins) {
            best = smallest;
            cands.clear();
          }
          if (smallest == best) cands.push_back(input);
        }
      }
      if (!any_request) break;
      ++rounds;

      for (PortId output = 0; output < num_outputs; ++output) {
        const auto& cands = candidates_[static_cast<std::size_t>(output)];
        if (cands.empty()) continue;
        const PortId winner = mutation_ == Mutation::kHighestInputTieBreak
                                  ? cands.back()
                                  : cands.front();
        matching.add_match(winner, output);
      }

      if (mutation_ == Mutation::kSingleRound) break;
    }
    matching.rounds = rounds;
  }

 private:
  Mutation mutation_;
  std::vector<std::uint64_t> best_;
  std::vector<std::vector<PortId>> candidates_;
};

}  // namespace

std::string_view mutation_name(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      return "none";
    case Mutation::kHighestInputTieBreak:
      return "highest-input-tiebreak";
    case Mutation::kSingleRound:
      return "single-round";
    case Mutation::kYoungestFirst:
      return "youngest-first";
    case Mutation::kIgnoreTimestamps:
      return "ignore-timestamps";
  }
  return "unknown";
}

std::optional<Mutation> parse_mutation(std::string_view name) {
  for (const Mutation m :
       {Mutation::kNone, Mutation::kHighestInputTieBreak,
        Mutation::kSingleRound, Mutation::kYoungestFirst,
        Mutation::kIgnoreTimestamps})
    if (name == mutation_name(m)) return m;
  return std::nullopt;
}

std::unique_ptr<VoqScheduler> make_mutant_scheduler(Mutation mutation) {
  if (mutation == Mutation::kNone) {
    FifomsOptions options;
    options.tie_break = TieBreak::kLowestInput;
    return std::make_unique<FifomsScheduler>(options);
  }
  return std::make_unique<MutantFifoms>(mutation);
}

}  // namespace fifoms::verify
