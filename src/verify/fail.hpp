// Failure channel for the bounded verifier.
//
// Every internal panic raised inside src/verify/ must carry the canonical
// hash of the switch state being processed, so that a crash report alone
// is enough to reproduce the offending state (`fifoms_verify` prints the
// same hashes in its traces, and tools/lint.py enforces the convention
// with the verify-panic-state-hash rule).  Property *violations* are not
// panics — they are returned as verify::Violation records; this channel
// is for contract breaches inside the verifier itself.
#pragma once

#include <cstdint>
#include <string_view>

namespace fifoms::verify {

/// Print "verify failure in state <hex hash>: <message>" and abort.
[[noreturn]] void verify_panic(const char* file, int line,
                               std::uint64_t state_hash,
                               std::string_view message);

}  // namespace fifoms::verify

#define FIFOMS_VERIFY_FAIL(state_hash, msg) \
  ::fifoms::verify::verify_panic(__FILE__, __LINE__, (state_hash), (msg))

#define FIFOMS_VERIFY_CHECK(cond, state_hash, msg)    \
  do {                                                \
    if (!(cond)) [[unlikely]] {                       \
      FIFOMS_VERIFY_FAIL(state_hash,                  \
                         "check failed: " #cond ": " msg); \
    }                                                 \
  } while (0)
