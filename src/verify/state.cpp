#include "verify/state.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "core/matching.hpp"
#include "verify/fail.hpp"

namespace fifoms::verify {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint8_t residue_mask(const PortSet& residue, int ports) {
  std::uint8_t mask = 0;
  for (PortId p : residue)
    if (p < ports) mask = static_cast<std::uint8_t>(mask | (1u << p));
  return mask;
}

PortSet mask_to_set(std::uint8_t mask) {
  PortSet set;
  for (PortId p = 0; p < 8; ++p)
    if (mask & (1u << p)) set.insert(p);
  return set;
}

}  // namespace

SwitchState::SwitchState(int ports) : ports_(ports) {
  if (ports < 1 || ports > kMaxVerifyPorts) {
    const std::uint64_t state_hash = 0;  // no state exists yet
    FIFOMS_VERIFY_FAIL(state_hash, "switch radix outside [1, 8]");
  }
  inputs_.resize(static_cast<std::size_t>(ports));
}

bool SwitchState::is_empty() const {
  for (const InputState& input : inputs_)
    if (!input.packets.empty()) return false;
  return true;
}

std::size_t SwitchState::packet_count() const {
  std::size_t total = 0;
  for (const InputState& input : inputs_) total += input.packets.size();
  return total;
}

std::size_t SwitchState::address_cell_count() const {
  std::size_t total = 0;
  for (const InputState& input : inputs_)
    for (const PacketState& packet : input.packets)
      total += static_cast<std::size_t>(packet.residue.count());
  return total;
}

std::size_t SwitchState::packets_at(PortId input) const {
  return inputs_[static_cast<std::size_t>(input)].packets.size();
}

std::uint32_t SwitchState::front_stamp(PortId input) const {
  const InputState& port = inputs_[static_cast<std::size_t>(input)];
  return port.packets.empty() ? kNoStamp : port.packets.front().stamp;
}

const PacketState* SwitchState::hol(PortId input, PortId output) const {
  for (const PacketState& packet :
       inputs_[static_cast<std::size_t>(input)].packets)
    if (packet.residue.contains(output)) return &packet;
  return nullptr;
}

bool SwitchState::well_formed(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (ports_ < 1 || ports_ > kMaxVerifyPorts)
    return fail("radix outside [1, 8]");
  if (static_cast<int>(inputs_.size()) != ports_)
    return fail("input vector does not match radix");
  for (PortId i = 0; i < ports_; ++i) {
    std::uint32_t last = kNoStamp;
    for (const PacketState& packet : inputs_[static_cast<std::size_t>(i)]
                                         .packets) {
      if (packet.residue.empty())
        return fail("packet with empty residue at input " +
                    std::to_string(i));
      for (PortId p : packet.residue)
        if (p >= ports_)
          return fail("residue port beyond radix at input " +
                      std::to_string(i));
      if (last != kNoStamp && packet.stamp <= last)
        return fail("stamps not strictly increasing at input " +
                    std::to_string(i));
      last = packet.stamp;
    }
  }
  return true;
}

void SwitchState::canonicalize() {
  std::vector<std::uint32_t> stamps;
  for (const InputState& input : inputs_)
    for (const PacketState& packet : input.packets)
      stamps.push_back(packet.stamp);
  std::sort(stamps.begin(), stamps.end());
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
  for (InputState& input : inputs_)
    for (PacketState& packet : input.packets)
      packet.stamp = static_cast<std::uint32_t>(
          std::lower_bound(stamps.begin(), stamps.end(), packet.stamp) -
          stamps.begin());
}

void SwitchState::push_arrivals(std::span<const PortSet> destinations) {
  const std::uint64_t state_hash = hash();
  FIFOMS_VERIFY_CHECK(static_cast<int>(destinations.size()) == ports_,
                      state_hash, "one destination set per input required");
  std::uint32_t fresh = 0;
  for (const InputState& input : inputs_)
    if (!input.packets.empty())
      fresh = std::max(fresh, input.packets.back().stamp + 1);
  for (PortId i = 0; i < ports_; ++i) {
    const PortSet& dests = destinations[static_cast<std::size_t>(i)];
    if (dests.empty()) continue;
    for (PortId p : dests)
      FIFOMS_VERIFY_CHECK(p < ports_, state_hash,
                          "arrival destination beyond radix");
    inputs_[static_cast<std::size_t>(i)].packets.push_back(
        PacketState{.stamp = fresh, .residue = dests});
  }
  canonicalize();
}

std::uint32_t SwitchState::apply_matching(const SlotMatching& matching) {
  const std::uint64_t state_hash = hash();
  FIFOMS_VERIFY_CHECK(matching.num_inputs() == ports_ &&
                          matching.num_outputs() == ports_,
                      state_hash, "matching dimensions mismatch state");

  std::vector<std::uint32_t> front_before(static_cast<std::size_t>(ports_));
  for (PortId i = 0; i < ports_; ++i)
    front_before[static_cast<std::size_t>(i)] = front_stamp(i);

  for (PortId i = 0; i < ports_; ++i) {
    InputState& port = inputs_[static_cast<std::size_t>(i)];
    for (PortId j : matching.grants(i)) {
      // Pop the HOL of VOQ (i, j): the earliest packet holding output j.
      bool served = false;
      for (PacketState& packet : port.packets) {
        if (!packet.residue.contains(j)) continue;
        packet.residue.erase(j);
        served = true;
        break;
      }
      if (!served)
        FIFOMS_VERIFY_FAIL(state_hash, "matching granted an empty VOQ");
    }
    std::erase_if(port.packets, [](const PacketState& packet) {
      return packet.residue.empty();
    });
  }

  std::uint32_t departed = 0;
  for (PortId i = 0; i < ports_; ++i) {
    const std::uint32_t before = front_before[static_cast<std::size_t>(i)];
    if (before == kNoStamp) continue;  // nothing was tracked at this input
    if (front_stamp(i) != before) departed |= 1u << i;
  }
  canonicalize();
  return departed;
}

std::string SwitchState::encode() const {
  std::string out;
  out.push_back(static_cast<char>(ports_));
  for (const InputState& input : inputs_) {
    out.push_back(static_cast<char>(input.packets.size()));
    for (const PacketState& packet : input.packets) {
      append_u32(out, packet.stamp);
      out.push_back(static_cast<char>(residue_mask(packet.residue, ports_)));
    }
  }
  return out;
}

bool SwitchState::decode(std::string_view bytes, SwitchState& out) {
  std::size_t at = 0;
  auto take_u8 = [&](std::uint8_t& v) {
    if (at >= bytes.size()) return false;
    v = static_cast<std::uint8_t>(bytes[at++]);
    return true;
  };
  auto take_u32 = [&](std::uint32_t& v) {
    if (at + 4 > bytes.size()) return false;
    v = 0;
    for (int k = 0; k < 4; ++k)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at++]))
           << (8 * k);
    return true;
  };

  std::uint8_t ports = 0;
  if (!take_u8(ports) || ports < 1 || ports > kMaxVerifyPorts) return false;
  SwitchState state(ports);
  for (PortId i = 0; i < ports; ++i) {
    std::uint8_t count = 0;
    if (!take_u8(count)) return false;
    std::uint32_t last = kNoStamp;
    for (int k = 0; k < count; ++k) {
      std::uint32_t stamp = 0;
      std::uint8_t mask = 0;
      if (!take_u32(stamp) || !take_u8(mask)) return false;
      if (mask == 0 || mask >= (1u << ports)) return false;
      if (last != kNoStamp && stamp <= last) return false;
      last = stamp;
      state.inputs_[static_cast<std::size_t>(i)].packets.push_back(
          PacketState{.stamp = stamp, .residue = mask_to_set(mask)});
    }
  }
  if (at != bytes.size()) return false;
  out = std::move(state);
  return true;
}

std::uint64_t SwitchState::hash() const {
  // FNV-1a over the encoding, then a splitmix-style finalizer so that
  // near-identical states land far apart.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : encode()) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::string SwitchState::to_string() const {
  std::string out;
  for (PortId i = 0; i < ports_; ++i) {
    if (i > 0) out += " | ";
    // Appended piecewise: chaining operator+ temporaries here trips a
    // gcc-12 -O3 -Wrestrict false positive (and allocates more anyway).
    out += "in";
    out += std::to_string(i);
    out += ':';
    const InputState& input = inputs_[static_cast<std::size_t>(i)];
    if (input.packets.empty()) {
      out += " -";
      continue;
    }
    for (const PacketState& packet : input.packets) {
      out += ' ';
      out += std::to_string(packet.stamp);
      out += '@';
      out += packet.residue.to_string();
    }
  }
  return out;
}

void SwitchState::materialize_into(std::vector<McVoqInput>& ports) const {
  const std::uint64_t state_hash = hash();
  std::string why;
  if (!well_formed(&why))
    FIFOMS_VERIFY_FAIL(state_hash,
                       std::string("materialize of malformed state: ") + why);

  bool reusable = static_cast<int>(ports.size()) == ports_;
  for (const McVoqInput& port : ports)
    reusable = reusable && port.num_outputs() == ports_ &&
               port.num_classes() == 1;
  if (!reusable) {
    ports.clear();
    ports.reserve(static_cast<std::size_t>(ports_));
    for (PortId i = 0; i < ports_; ++i) ports.emplace_back(i, ports_);
  }

  std::vector<Packet> packets;
  for (PortId i = 0; i < ports_; ++i) {
    packets.clear();
    const InputState& input = inputs_[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < input.packets.size(); ++k) {
      const PacketState& packet = input.packets[k];
      packets.push_back(Packet{
          .id = (static_cast<PacketId>(i) << 32) | k,
          .input = i,
          .arrival = static_cast<SlotTime>(packet.stamp),
          .destinations = packet.residue,
      });
    }
    ports[static_cast<std::size_t>(i)].inject_queue_state(packets);
  }
}

SwitchState SwitchState::read_back(std::span<const McVoqInput> ports) {
  const int radix = static_cast<int>(ports.size());
  {
    const std::uint64_t state_hash = 0;  // state is being reconstructed
    FIFOMS_VERIFY_CHECK(radix >= 1 && radix <= kMaxVerifyPorts, state_hash,
                        "read_back radix outside [1, 8]");
    for (const McVoqInput& port : ports) {
      FIFOMS_VERIFY_CHECK(port.num_outputs() == radix, state_hash,
                          "read_back requires a square switch");
      FIFOMS_VERIFY_CHECK(port.num_classes() == 1, state_hash,
                          "verifier states are single-class");
    }
  }

  SwitchState state(radix);
  for (PortId i = 0; i < radix; ++i) {
    // Gather (stamp -> residue) from the per-VOQ projections.
    std::vector<PacketState>& packets =
        state.inputs_[static_cast<std::size_t>(i)].packets;
    for (PortId j = 0; j < radix; ++j) {
      const auto& voq = ports[static_cast<std::size_t>(i)].address_cells(0, j);
      for (std::size_t k = 0; k < voq.size(); ++k) {
        const auto stamp = static_cast<std::uint32_t>(voq[k].timestamp);
        auto it = std::find_if(packets.begin(), packets.end(),
                               [stamp](const PacketState& p) {
                                 return p.stamp == stamp;
                               });
        if (it == packets.end()) {
          packets.push_back(PacketState{.stamp = stamp, .residue = {}});
          it = packets.end() - 1;
        }
        it->residue.insert(j);
      }
    }
    std::sort(packets.begin(), packets.end(),
              [](const PacketState& a, const PacketState& b) {
                return a.stamp < b.stamp;
              });
  }
  return state;
}

SwitchState SwitchState::from_fuzz_bytes(std::span<const unsigned char> bytes) {
  std::size_t at = 0;
  auto next = [&]() -> std::uint8_t {
    return at < bytes.size() ? bytes[at++] : 0;
  };

  const int ports = 2 + next() % (kMaxVerifyPorts - 1);  // radix 2..8
  const int depth = 1 + next() % 6;
  SwitchState state(ports);
  const std::uint8_t full = static_cast<std::uint8_t>((1u << ports) - 1);
  for (PortId i = 0; i < ports; ++i) {
    const int count = next() % (depth + 1);
    std::uint32_t stamp = next() % 4;  // allow cross-input stamp ties
    for (int k = 0; k < count; ++k) {
      std::uint8_t mask = static_cast<std::uint8_t>(next() & full);
      if (mask == 0) mask = static_cast<std::uint8_t>(1u << (next() % ports));
      state.inputs_[static_cast<std::size_t>(i)].packets.push_back(
          PacketState{.stamp = stamp, .residue = mask_to_set(mask)});
      stamp += 1 + next() % 3;
    }
  }
  state.canonicalize();
  return state;
}

PortSet fault_mask_from_fuzz_byte(unsigned char byte, int ports) {
  PortSet mask;
  if (ports <= 0) return mask;
  const int choice = static_cast<int>(byte) % (ports + 1);
  if (choice > 0) mask.insert(static_cast<PortId>(choice - 1));
  return mask;
}

}  // namespace fifoms::verify
