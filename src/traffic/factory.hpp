// Traffic model factory: build a model from a compact spec string.
//
// Spec grammar:  <kind>:<key>=<value>[,<key>=<value>...]
//
//   bernoulli:p=0.2,b=0.2          Bernoulli multicast
//   uniform:p=0.5,maxf=8           uniform fanout in {1..maxf}
//   unicast:p=0.9                  pure unicast
//   burst:eon=16,eoff=48,b=0.5     two-state Markov bursts
//   hotspot:p=0.5,hot=0.3,port=0   skewed unicast
//   mixed:p=0.5,u=0.5,maxf=8       unicast/multicast mix
//
// Used by the example CLIs so a scenario is a single command-line flag.
#pragma once

#include <memory>
#include <string>

#include "traffic/traffic_model.hpp"

namespace fifoms {

/// Build a traffic model from a spec; panics with a clear message on
/// unknown kinds or missing keys.
std::unique_ptr<TrafficModel> make_traffic(int num_ports,
                                           const std::string& spec);

}  // namespace fifoms
