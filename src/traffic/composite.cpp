#include "traffic/composite.hpp"

#include "traffic/uniform_fanout.hpp"

namespace fifoms {

MixedTraffic::MixedTraffic(int num_ports, double p, double unicast_share,
                           int max_fanout)
    : TrafficModel(num_ports), p_(p), unicast_share_(unicast_share),
      max_fanout_(max_fanout) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
  FIFOMS_ASSERT(unicast_share >= 0.0 && unicast_share <= 1.0,
                "unicast share out of [0,1]");
  FIFOMS_ASSERT(max_fanout >= 2 && max_fanout <= num_ports,
                "maxFanout must be in [2, N] for the multicast component");
}

PortSet MixedTraffic::arrival(PortId /*input*/, SlotTime /*now*/, Rng& rng) {
  if (!rng.bernoulli(p_)) return {};
  int fanout = 1;
  if (!rng.bernoulli(unicast_share_))
    fanout = static_cast<int>(rng.uniform_int(2, max_fanout_));
  return UniformFanoutTraffic::random_subset(num_ports(), fanout, rng);
}

double MixedTraffic::mean_fanout() const {
  const double multicast_mean = (2.0 + static_cast<double>(max_fanout_)) / 2.0;
  return unicast_share_ * 1.0 + (1.0 - unicast_share_) * multicast_mean;
}

double MixedTraffic::offered_load() const { return p_ * mean_fanout(); }

}  // namespace fifoms
