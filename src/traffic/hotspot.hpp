// Hotspot traffic (library extension, not in the paper).
//
// Unicast arrivals where a fraction `hot_share` of packets target one hot
// output and the rest are uniform over all outputs.  Models the skewed
// popularity seen in real multicast deployments (a popular channel or a
// storage shard) and lets examples/tests exercise the schedulers under
// non-uniform load, where the paper's 100%-throughput argument does not
// apply.  offered_load() reports the load on the *hot* output, the
// bottleneck that determines stability.
#pragma once

#include "traffic/traffic_model.hpp"

namespace fifoms {

class HotspotTraffic final : public TrafficModel {
 public:
  HotspotTraffic(int num_ports, double p, double hot_share,
                 PortId hot_port = 0);

  std::string_view name() const override { return "hotspot"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  PortId hot_port() const { return hot_port_; }

 private:
  double p_;
  double hot_share_;
  PortId hot_port_;
};

}  // namespace fifoms
