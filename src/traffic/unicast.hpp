// Pure unicast Bernoulli i.i.d. traffic: with probability p a packet
// arrives, destined to a single uniformly random output.
//
// Behaviourally identical to UniformFanoutTraffic with maxFanout = 1 but
// cheaper (no subset sampling) and explicit about intent.  This is the
// classical model under which the single input-queued switch saturates at
// 2 - sqrt(2) ≈ 0.586 (Karol et al. 1987), reproduced in Fig. 6.
#pragma once

#include "traffic/traffic_model.hpp"

namespace fifoms {

class UnicastTraffic final : public TrafficModel {
 public:
  UnicastTraffic(int num_ports, double p);

  std::string_view name() const override { return "unicast"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override { return p_; }

 private:
  double p_;
};

}  // namespace fifoms
