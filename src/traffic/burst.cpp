#include "traffic/burst.hpp"

#include "snapshot/snapshot.hpp"

namespace fifoms {

BurstTraffic::BurstTraffic(int num_ports, double e_off, double e_on, double b)
    : TrafficModel(num_ports), e_off_(e_off), e_on_(e_on), b_(b) {
  FIFOMS_ASSERT(e_off >= 1.0, "mean OFF period must be >= 1 slot");
  FIFOMS_ASSERT(e_on >= 1.0, "mean ON period must be >= 1 slot");
  FIFOMS_ASSERT(b > 0.0 && b <= 1.0, "destination probability out of (0,1]");
  sources_.resize(static_cast<std::size_t>(num_ports));
}

PortSet BurstTraffic::draw_destinations(Rng& rng) const {
  while (true) {
    PortSet set;
    for (PortId output = 0; output < num_ports(); ++output)
      if (rng.bernoulli(b_)) set.insert(output);
    if (!set.empty()) return set;  // redraw the (1-b)^N all-empty outcome
  }
}

void BurstTraffic::reset(Rng& rng) {
  const double on_fraction = e_on_ / (e_on_ + e_off_);
  for (auto& source : sources_) {
    source.on = rng.bernoulli(on_fraction);
    if (source.on) source.destinations = draw_destinations(rng);
  }
}

PortSet BurstTraffic::arrival(PortId input, SlotTime /*now*/, Rng& rng) {
  auto& source = sources_[static_cast<std::size_t>(input)];
  if (source.on) {
    if (rng.bernoulli(1.0 / e_on_)) source.on = false;
  } else if (rng.bernoulli(1.0 / e_off_)) {
    source.on = true;
    source.destinations = draw_destinations(rng);
  }
  return source.on ? source.destinations : PortSet{};
}

double BurstTraffic::offered_load() const {
  return b_ * static_cast<double>(num_ports()) * e_on_ / (e_on_ + e_off_);
}

double BurstTraffic::e_off_for_load(double load, double e_on, double b,
                                    int num_ports) {
  FIFOMS_ASSERT(load > 0.0, "load must be positive");
  const double peak = b * static_cast<double>(num_ports);
  FIFOMS_ASSERT(load < peak, "load unreachable: must be < b*N");
  return e_on * (peak / load - 1.0);
}


void BurstTraffic::save_state(snapshot::Writer& out) const {
  for (const SourceState& source : sources_) {
    out.boolean(source.on);
    out.port_set(source.destinations);
  }
}

void BurstTraffic::load_state(snapshot::Reader& in) {
  for (SourceState& source : sources_) {
    source.on = in.boolean();
    source.destinations = in.port_set();
  }
}

}  // namespace fifoms
