#include "traffic/factory.hpp"

#include <cstdlib>
#include <map>

#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"
#include "traffic/composite.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/unicast.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms {

namespace {

using KeyValues = std::map<std::string, std::string, std::less<>>;

KeyValues parse_pairs(std::string_view text) {
  KeyValues out;
  while (!text.empty()) {
    const auto comma = text.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? text : text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const auto eq = item.find('=');
    FIFOMS_ASSERT(eq != std::string_view::npos,
                  "traffic spec: expected key=value");
    out.emplace(std::string(item.substr(0, eq)),
                std::string(item.substr(eq + 1)));
  }
  return out;
}

double get_double(const KeyValues& kv, std::string_view key) {
  const auto it = kv.find(key);
  FIFOMS_ASSERT(it != kv.end(), "traffic spec: missing required key");
  return std::strtod(it->second.c_str(), nullptr);
}

double get_double_or(const KeyValues& kv, std::string_view key,
                     double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

int get_int(const KeyValues& kv, std::string_view key) {
  return static_cast<int>(get_double(kv, key));
}

}  // namespace

std::unique_ptr<TrafficModel> make_traffic(int num_ports,
                                           const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const KeyValues kv =
      colon == std::string::npos ? KeyValues{} : parse_pairs(
          std::string_view(spec).substr(colon + 1));

  if (kind == "bernoulli") {
    return std::make_unique<BernoulliTraffic>(num_ports, get_double(kv, "p"),
                                              get_double(kv, "b"));
  }
  if (kind == "uniform") {
    return std::make_unique<UniformFanoutTraffic>(
        num_ports, get_double(kv, "p"), get_int(kv, "maxf"));
  }
  if (kind == "unicast") {
    return std::make_unique<UnicastTraffic>(num_ports, get_double(kv, "p"));
  }
  if (kind == "burst") {
    return std::make_unique<BurstTraffic>(num_ports, get_double(kv, "eoff"),
                                          get_double(kv, "eon"),
                                          get_double(kv, "b"));
  }
  if (kind == "hotspot") {
    return std::make_unique<HotspotTraffic>(
        num_ports, get_double(kv, "p"), get_double(kv, "hot"),
        static_cast<PortId>(get_double_or(kv, "port", 0)));
  }
  if (kind == "mixed") {
    return std::make_unique<MixedTraffic>(num_ports, get_double(kv, "p"),
                                          get_double(kv, "u"),
                                          get_int(kv, "maxf"));
  }
  panic(__FILE__, __LINE__, "traffic spec: unknown kind '" + kind + "'");
}

}  // namespace fifoms
