#include "traffic/trace.hpp"

#include <fstream>

namespace fifoms {

ScriptedTraffic::ScriptedTraffic(int num_ports,
                                 std::vector<TraceRecord> records)
    : TrafficModel(num_ports), records_(std::move(records)) {
  SlotTime horizon = 0;
  std::uint64_t copies = 0;
  for (const auto& record : records_) {
    FIFOMS_ASSERT(record.input >= 0 && record.input < num_ports,
                  "trace record input out of range");
    FIFOMS_ASSERT(!record.destinations.empty(),
                  "trace record with no destinations");
    FIFOMS_ASSERT(record.slot >= 0, "trace record with negative slot");
    const auto [it, inserted] = by_slot_input_.emplace(
        key(record.input, record.slot), record.destinations);
    (void)it;
    FIFOMS_ASSERT(inserted, "two trace records for one (slot, input)");
    horizon = std::max(horizon, record.slot + 1);
    copies += static_cast<std::uint64_t>(record.destinations.count());
  }
  if (horizon > 0) {
    offered_load_ = static_cast<double>(copies) /
                    (static_cast<double>(horizon) *
                     static_cast<double>(num_ports));
  }
}

PortSet ScriptedTraffic::arrival(PortId input, SlotTime now, Rng& /*rng*/) {
  const auto it = by_slot_input_.find(key(input, now));
  return it == by_slot_input_.end() ? PortSet{} : it->second;
}

ScriptedTraffic ScriptedTraffic::load(const std::string& path) {
  std::ifstream in(path);
  FIFOMS_ASSERT(in.good(), "cannot open trace file");
  int num_ports = 0;
  std::string header;
  in >> header >> num_ports;
  FIFOMS_ASSERT(header == "ports" && num_ports > 0,
                "trace file missing 'ports N' header");
  std::vector<TraceRecord> records;
  SlotTime slot;
  PortId input;
  std::string destinations;
  while (in >> slot >> input >> destinations) {
    records.push_back(
        TraceRecord{slot, input, PortSet::from_string(destinations)});
  }
  return ScriptedTraffic(num_ports, std::move(records));
}

TraceRecorder::TraceRecorder(TrafficModel& inner)
    : TrafficModel(inner.num_ports()), inner_(inner) {}

PortSet TraceRecorder::arrival(PortId input, SlotTime now, Rng& rng) {
  PortSet destinations = inner_.arrival(input, now, rng);
  if (!destinations.empty())
    records_.push_back(TraceRecord{now, input, destinations});
  return destinations;
}

void TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  FIFOMS_ASSERT(out.good(), "cannot open trace file for writing");
  out << "ports " << num_ports() << "\n";
  for (const auto& record : records_) {
    out << record.slot << ' ' << record.input << ' '
        << record.destinations.to_string() << "\n";
  }
  FIFOMS_ASSERT(out.good(), "trace file write failed");
}

}  // namespace fifoms
