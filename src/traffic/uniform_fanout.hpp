// Uniform traffic with bounded fanout (paper Section V-B).
//
// With probability p an input has a packet; its fanout is uniform on
// {1, ..., maxFanout} and the destinations are a uniformly random subset
// of that size.  Mean fanout is (1 + maxFanout)/2 and the effective load
// is p*(1 + maxFanout)/2.  maxFanout = 1 is pure unicast traffic (the
// paper's Fig. 6 setting).
#pragma once

#include "traffic/traffic_model.hpp"

namespace fifoms {

class UniformFanoutTraffic final : public TrafficModel {
 public:
  UniformFanoutTraffic(int num_ports, double p, int max_fanout);

  std::string_view name() const override { return "uniform"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  int max_fanout() const { return max_fanout_; }
  double arrival_probability() const { return p_; }

  /// Arrival probability p that yields the given effective load.
  static double p_for_load(double load, int max_fanout);

  /// Uniformly random k-subset of {0..n-1} (Floyd's sampling algorithm).
  static PortSet random_subset(int n, int k, Rng& rng);

 private:
  double p_;
  int max_fanout_;
};

}  // namespace fifoms
