// Scripted and recorded traffic.
//
// ScriptedTraffic replays an explicit list of arrival events — the
// workhorse of deterministic tests ("inject exactly these packets at
// exactly these slots") and of trace-driven experiments.
//
// TraceRecorder wraps any TrafficModel, forwards its arrivals unchanged
// and remembers them; the trace can be saved to a plain-text file
// ("slot input {d0,d1,...}" per line) and loaded back into a
// ScriptedTraffic, enabling record-once / replay-everywhere comparisons
// where every scheduler sees the bit-identical arrival sequence.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "traffic/traffic_model.hpp"

namespace fifoms {

struct TraceRecord {
  SlotTime slot = 0;
  PortId input = kNoPort;
  PortSet destinations;

  bool operator==(const TraceRecord&) const = default;
};

class ScriptedTraffic final : public TrafficModel {
 public:
  ScriptedTraffic(int num_ports, std::vector<TraceRecord> records);

  std::string_view name() const override { return "scripted"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override { return offered_load_; }

  std::size_t record_count() const { return records_.size(); }

  /// Parse the text format written by TraceRecorder::save.
  static ScriptedTraffic load(const std::string& path);

 private:
  static std::uint64_t key(PortId input, SlotTime slot) {
    return (static_cast<std::uint64_t>(slot) << 16) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(input));
  }

  std::vector<TraceRecord> records_;
  std::unordered_map<std::uint64_t, PortSet> by_slot_input_;
  double offered_load_ = 0.0;
};

class TraceRecorder final : public TrafficModel {
 public:
  /// Wrap `inner` (not owned) and record every arrival it produces.
  explicit TraceRecorder(TrafficModel& inner);

  std::string_view name() const override { return "recorded"; }
  void reset(Rng& rng) override { inner_.reset(rng); }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override { return inner_.offered_load(); }

  const std::vector<TraceRecord>& records() const { return records_; }

  /// Write the trace in the text format understood by ScriptedTraffic.
  void save(const std::string& path) const;

 private:
  TrafficModel& inner_;
  std::vector<TraceRecord> records_;
};

}  // namespace fifoms
