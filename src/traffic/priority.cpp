#include "traffic/priority.hpp"

#include <algorithm>
#include <cmath>

namespace fifoms {

PriorityTraffic::PriorityTraffic(std::unique_ptr<TrafficModel> inner,
                                 std::vector<double> shares)
    : TrafficModel(inner->num_ports()), inner_(std::move(inner)),
      shares_(std::move(shares)) {
  FIFOMS_ASSERT(!shares_.empty() &&
                    static_cast<int>(shares_.size()) <= kMaxPriority + 1,
                "class count out of range");
  double total = 0.0;
  for (double share : shares_) {
    FIFOMS_ASSERT(share >= 0.0, "negative class share");
    total += share;
    cumulative_.push_back(total);
  }
  FIFOMS_ASSERT(std::abs(total - 1.0) < 1e-9, "class shares must sum to 1");
  cumulative_.back() = 1.0;
}

PortSet PriorityTraffic::arrival(PortId input, SlotTime now, Rng& rng) {
  const PortSet destinations = inner_->arrival(input, now, rng);
  if (destinations.empty()) return destinations;
  const double u = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  last_priority_ =
      static_cast<int>(std::distance(cumulative_.begin(), it));
  return destinations;
}

double PriorityTraffic::class_share(int priority) const {
  FIFOMS_ASSERT(priority >= 0 && priority < num_classes(),
                "class out of range");
  return shares_[static_cast<std::size_t>(priority)];
}

}  // namespace fifoms
