// TrafficModel: source of multicast cell arrivals.
//
// The simulator asks the model once per (input port, slot) for the
// destination set of the arriving packet; an empty set means "no arrival".
// At most one packet arrives per input per slot (the paper's synchronous
// slot model).  Models are deterministic functions of the Rng stream, so
// a run is reproducible from (config, seed).
//
// offered_load() returns the analytic effective load normalised per
// output: expected copies per output per slot under uniformly spread
// destinations (the x-axis of every figure in the paper).
#pragma once

#include <string_view>

#include "common/panic.hpp"
#include "common/port_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fifoms {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  virtual std::string_view name() const = 0;

  int num_ports() const { return num_ports_; }

  /// Re-initialise per-port state (e.g. burst on/off) before a run.
  virtual void reset(Rng& /*rng*/) {}

  /// Destination set of the packet arriving at `input` in slot `now`;
  /// empty set when no packet arrives.  Must be called exactly once per
  /// (input, slot) in slot order — stateful models advance on each call.
  virtual PortSet arrival(PortId input, SlotTime now, Rng& rng) = 0;

  /// Analytic effective load per output (1.0 = full line rate).
  virtual double offered_load() const = 0;

  /// QoS class of the packet returned by the most recent non-empty
  /// arrival() (0 = highest priority).  Single-class models — everything
  /// in the paper — keep the default.
  virtual int last_priority() const { return 0; }

  /// Cross-slot source state (burst on/off, churned group tables) for
  /// snapshot.  Memoryless models keep the no-op defaults; the Rng is
  /// saved separately by the simulator.
  virtual void save_state(snapshot::Writer& out) const { (void)out; }
  virtual void load_state(snapshot::Reader& in) { (void)in; }

 protected:
  explicit TrafficModel(int num_ports) : num_ports_(num_ports) {
    FIFOMS_ASSERT(num_ports > 0 && num_ports <= kMaxPorts,
                  "unsupported port count");
  }

 private:
  int num_ports_;
};

}  // namespace fifoms
