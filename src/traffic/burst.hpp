// Bursty traffic: two-state Markov on/off source per input
// (paper Section V-C).
//
// In the ON state a packet arrives every slot, and all packets of one
// burst share the same destination set (drawn at burst start, each output
// with probability b, redrawn on the all-empty outcome — probability
// (1-b)^N, negligible at the paper's b = 0.5, N = 16).  At each slot the
// source leaves ON with probability 1/E_on and leaves OFF with probability
// 1/E_off, giving geometric sojourn times with means E_on and E_off.
// Arrival rate is E_on/(E_on + E_off); effective load is b*N*rate.
//
// reset() draws the initial state from the stationary distribution so the
// measured interval is not biased by an all-OFF start.
#pragma once

#include <vector>

#include "traffic/traffic_model.hpp"

namespace fifoms {

class BurstTraffic final : public TrafficModel {
 public:
  BurstTraffic(int num_ports, double e_off, double e_on, double b);

  std::string_view name() const override { return "burst"; }
  void reset(Rng& rng) override;
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  double mean_off() const { return e_off_; }
  double mean_on() const { return e_on_; }

  /// E_off that yields the given effective load at fixed (E_on, b, N).
  static double e_off_for_load(double load, double e_on, double b,
                               int num_ports);

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  PortSet draw_destinations(Rng& rng) const;

  struct SourceState {
    bool on = false;
    PortSet destinations;
  };

  double e_off_;
  double e_on_;
  double b_;
  std::vector<SourceState> sources_;
};

}  // namespace fifoms
