#include "traffic/hotspot.hpp"

namespace fifoms {

HotspotTraffic::HotspotTraffic(int num_ports, double p, double hot_share,
                               PortId hot_port)
    : TrafficModel(num_ports), p_(p), hot_share_(hot_share),
      hot_port_(hot_port) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
  FIFOMS_ASSERT(hot_share >= 0.0 && hot_share <= 1.0,
                "hot share out of [0,1]");
  FIFOMS_ASSERT(hot_port >= 0 && hot_port < num_ports,
                "hot port out of range");
}

PortSet HotspotTraffic::arrival(PortId /*input*/, SlotTime /*now*/, Rng& rng) {
  if (!rng.bernoulli(p_)) return {};
  if (rng.bernoulli(hot_share_)) return PortSet::single(hot_port_);
  return PortSet::single(static_cast<PortId>(
      rng.next_below(static_cast<std::uint64_t>(num_ports()))));
}

double HotspotTraffic::offered_load() const {
  // Load on the hot output: N inputs, each sending there with probability
  // p * (hot_share + (1 - hot_share)/N).
  const double n = static_cast<double>(num_ports());
  return n * p_ * (hot_share_ + (1.0 - hot_share_) / n);
}

}  // namespace fifoms
