// PriorityTraffic: QoS-class decorator for any traffic model.
//
// Wraps an inner model and stamps each arriving packet with a class drawn
// from a configured distribution (class k with probability share[k]).
// Used with VoqSwitch::Options::num_classes > 1 to exercise the strict-
// priority extension of the multicast VOQ structure.
#pragma once

#include <memory>
#include <vector>

#include "traffic/traffic_model.hpp"

namespace fifoms {

class PriorityTraffic final : public TrafficModel {
 public:
  /// `shares[k]` is the probability that a packet belongs to class k;
  /// the shares must sum to 1 (within rounding).
  PriorityTraffic(std::unique_ptr<TrafficModel> inner,
                  std::vector<double> shares);

  std::string_view name() const override { return "priority"; }
  void reset(Rng& rng) override { inner_->reset(rng); }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override { return inner_->offered_load(); }
  int last_priority() const override { return last_priority_; }

  int num_classes() const { return static_cast<int>(shares_.size()); }

  /// Analytic per-class share of the offered load.
  double class_share(int priority) const;

 private:
  std::unique_ptr<TrafficModel> inner_;
  std::vector<double> shares_;     // probabilities per class
  std::vector<double> cumulative_; // inclusive prefix sums
  int last_priority_ = 0;
};

}  // namespace fifoms
