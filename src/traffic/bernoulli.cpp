#include "traffic/bernoulli.hpp"

namespace fifoms {

BernoulliTraffic::BernoulliTraffic(int num_ports, double p, double b)
    : TrafficModel(num_ports), p_(p), b_(b) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
  FIFOMS_ASSERT(b >= 0.0 && b <= 1.0, "destination probability out of [0,1]");
}

PortSet BernoulliTraffic::arrival(PortId /*input*/, SlotTime /*now*/,
                                  Rng& rng) {
  if (!rng.bernoulli(p_)) return {};
  PortSet destinations;
  for (PortId output = 0; output < num_ports(); ++output)
    if (rng.bernoulli(b_)) destinations.insert(output);
  return destinations;  // possibly empty: counted as no arrival
}

double BernoulliTraffic::offered_load() const {
  return p_ * b_ * static_cast<double>(num_ports());
}

double BernoulliTraffic::p_for_load(double load, double b, int num_ports) {
  FIFOMS_ASSERT(b > 0.0 && num_ports > 0, "degenerate Bernoulli parameters");
  return load / (b * static_cast<double>(num_ports));
}

}  // namespace fifoms
