// Bernoulli multicast traffic (paper Section V-A).
//
// Parameters p and b: with probability p an input has a packet in a slot,
// and the packet is addressed to each output independently with
// probability b.  Mean fanout is b*N and the effective load is p*b*N.
//
// A destination draw can come out empty (probability (1-b)^N); we treat
// that as "no arrival", which keeps the analytic effective load exactly
// p*b*N (the empty draw contributes zero copies either way).
#pragma once

#include "traffic/traffic_model.hpp"

namespace fifoms {

class BernoulliTraffic final : public TrafficModel {
 public:
  BernoulliTraffic(int num_ports, double p, double b);

  std::string_view name() const override { return "bernoulli"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  double arrival_probability() const { return p_; }
  double destination_probability() const { return b_; }

  /// Arrival probability p that yields the given effective load.
  static double p_for_load(double load, double b, int num_ports);

 private:
  double p_;
  double b_;
};

}  // namespace fifoms
