#include "traffic/unicast.hpp"

namespace fifoms {

UnicastTraffic::UnicastTraffic(int num_ports, double p)
    : TrafficModel(num_ports), p_(p) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
}

PortSet UnicastTraffic::arrival(PortId /*input*/, SlotTime /*now*/, Rng& rng) {
  if (!rng.bernoulli(p_)) return {};
  return PortSet::single(static_cast<PortId>(
      rng.next_below(static_cast<std::uint64_t>(num_ports()))));
}

}  // namespace fifoms
