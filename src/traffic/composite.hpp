// Mixed unicast/multicast traffic.
//
// The paper's introduction motivates FIFOMS with traffic that mixes
// unicast and multicast packets (the regime where TATRA degrades).  With
// probability p an input has a packet; with probability `unicast_share`
// it is unicast (one uniform destination), otherwise multicast with
// fanout uniform on {2, ..., maxFanout}.
#pragma once

#include "traffic/traffic_model.hpp"

namespace fifoms {

class MixedTraffic final : public TrafficModel {
 public:
  MixedTraffic(int num_ports, double p, double unicast_share, int max_fanout);

  std::string_view name() const override { return "mixed"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  double mean_fanout() const;

 private:
  double p_;
  double unicast_share_;
  int max_fanout_;
};

}  // namespace fifoms
