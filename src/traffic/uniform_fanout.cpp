#include "traffic/uniform_fanout.hpp"

namespace fifoms {

UniformFanoutTraffic::UniformFanoutTraffic(int num_ports, double p,
                                           int max_fanout)
    : TrafficModel(num_ports), p_(p), max_fanout_(max_fanout) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
  FIFOMS_ASSERT(max_fanout >= 1 && max_fanout <= num_ports,
                "maxFanout must be in [1, N]");
}

PortSet UniformFanoutTraffic::random_subset(int n, int k, Rng& rng) {
  FIFOMS_ASSERT(k >= 0 && k <= n, "subset size out of range");
  // Floyd's algorithm: k iterations, uniform over all k-subsets.
  PortSet set;
  for (int j = n - k; j < n; ++j) {
    const auto t =
        static_cast<PortId>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (set.contains(t)) {
      set.insert(j);
    } else {
      set.insert(t);
    }
  }
  return set;
}

PortSet UniformFanoutTraffic::arrival(PortId /*input*/, SlotTime /*now*/,
                                      Rng& rng) {
  if (!rng.bernoulli(p_)) return {};
  const int fanout =
      static_cast<int>(rng.uniform_int(1, max_fanout_));
  return random_subset(num_ports(), fanout, rng);
}

double UniformFanoutTraffic::offered_load() const {
  return p_ * (1.0 + static_cast<double>(max_fanout_)) / 2.0;
}

double UniformFanoutTraffic::p_for_load(double load, int max_fanout) {
  return 2.0 * load / (1.0 + static_cast<double>(max_fanout));
}

}  // namespace fifoms
