// OutputFifo: per-output queue of an output-queued switch (paper Fig. 1(a)).
//
// The OQ switch assumes an internal speedup of N: every copy of an
// arriving packet is enqueued at its destination output in the arrival
// slot, and each output drains one cell per slot.  The paper uses OQFIFO
// as the performance upper bound.
#pragma once

#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"

namespace fifoms {

struct OutputCell {
  PacketId packet = kNoPacket;
  PortId input = kNoPort;
  SlotTime arrival = 0;
  std::uint64_t payload_tag = 0;
};

class OutputFifo {
 public:
  explicit OutputFifo(PortId output) : output_(output) {}

  PortId port() const { return output_; }

  void push(const OutputCell& cell) { queue_.push_back(cell); }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  const OutputCell& front() const { return queue_.front(); }
  OutputCell pop() { return queue_.pop_front(); }

  void clear() { queue_.clear(); }

  /// The queue head-to-tail, for snapshot (restore is clear() + push()).
  std::vector<OutputCell> cells() const {
    std::vector<OutputCell> out;
    out.reserve(queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i) out.push_back(queue_[i]);
    return out;
  }

 private:
  PortId output_;
  RingBuffer<OutputCell> queue_;
};

}  // namespace fifoms
