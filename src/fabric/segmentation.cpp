#include "fabric/segmentation.hpp"

#include <algorithm>
#include <cmath>

namespace fifoms {

Segmenter::Segmenter(int cell_payload_bytes)
    : cell_payload_bytes_(cell_payload_bytes) {
  FIFOMS_ASSERT(cell_payload_bytes >= 1, "cell payload must be positive");
}

int Segmenter::cells_for(int length_bytes) const {
  FIFOMS_ASSERT(length_bytes >= 0, "negative frame length");
  if (length_bytes == 0) return 1;
  return (length_bytes + cell_payload_bytes_ - 1) / cell_payload_bytes_;
}

FrameTraffic::FrameTraffic(int num_ports, Segmenter segmenter, double frame_p,
                           int min_bytes, int max_bytes, double b)
    : TrafficModel(num_ports), segmenter_(segmenter), frame_p_(frame_p),
      min_bytes_(min_bytes), max_bytes_(max_bytes), b_(b) {
  FIFOMS_ASSERT(frame_p >= 0.0 && frame_p <= 1.0,
                "frame probability out of [0,1]");
  FIFOMS_ASSERT(min_bytes >= 1 && min_bytes <= max_bytes,
                "frame length bounds out of order");
  FIFOMS_ASSERT(b > 0.0 && b <= 1.0, "destination probability out of (0,1]");
  inputs_.resize(static_cast<std::size_t>(num_ports));
}

PortSet FrameTraffic::arrival(PortId input, SlotTime now, Rng& rng) {
  InputState& state = inputs_[static_cast<std::size_t>(input)];

  // New frame reaches the ingress?
  if (rng.bernoulli(frame_p_)) {
    PortSet destinations;
    do {
      destinations.clear();
      for (PortId output = 0; output < num_ports(); ++output)
        if (rng.bernoulli(b_)) destinations.insert(output);
    } while (destinations.empty());
    const int length = static_cast<int>(
        rng.uniform_int(min_bytes_, max_bytes_));
    Frame frame;
    frame.id = static_cast<FrameId>(frames_.size());
    frame.input = input;
    frame.created = now;
    frame.length_bytes = length;
    frame.cells = segmenter_.cells_for(length);
    frame.destinations = destinations;
    frames_.push_back(frame);
    state.pending.push_back(frame.id);
  }

  if (state.pending.empty()) {
    state.last_cell = -1;
    return {};
  }

  // Emit the next cell of the frame at the head of the ingress queue.
  const Frame& front = frames_[static_cast<std::size_t>(state.pending.front())];
  state.last_frame = front.id;
  state.last_cell = state.next_cell;
  const PortSet destinations = front.destinations;
  if (++state.next_cell == front.cells) {
    state.pending.pop_front();
    state.next_cell = 0;
  }
  return destinations;
}

const Frame& FrameTraffic::last_frame(PortId input) const {
  const InputState& state = inputs_[static_cast<std::size_t>(input)];
  FIFOMS_ASSERT(state.last_cell >= 0,
                "last_frame before a non-empty arrival()");
  return frames_[static_cast<std::size_t>(state.last_frame)];
}

int FrameTraffic::last_cell_index(PortId input) const {
  const InputState& state = inputs_[static_cast<std::size_t>(input)];
  FIFOMS_ASSERT(state.last_cell >= 0,
                "last_cell_index before a non-empty arrival()");
  return state.last_cell;
}

double FrameTraffic::mean_cells_per_frame() const {
  // Average of ceil(L / payload) over L uniform on [min, max].
  double total = 0.0;
  for (int length = min_bytes_; length <= max_bytes_; ++length)
    total += segmenter_.cells_for(length);
  return total / static_cast<double>(max_bytes_ - min_bytes_ + 1);
}

double FrameTraffic::offered_load() const {
  // Cells per input per slot (capped at the ingress line rate of one cell
  // per slot) times the mean fanout, where the fanout is b*N conditioned
  // on the non-empty redraw.
  const double n = static_cast<double>(num_ports());
  const double empty = std::pow(1.0 - b_, n);
  const double mean_fanout = b_ * n / (1.0 - empty);
  const double cells_per_slot =
      std::min(1.0, frame_p_ * mean_cells_per_frame());
  return cells_per_slot * mean_fanout;
}

std::optional<Reassembler::Completion> Reassembler::on_cell(
    const Frame& frame, PortId output, SlotTime now) {
  FIFOMS_ASSERT(frame.destinations.contains(output),
                "cell delivered to a non-member output");
  const std::uint64_t k = key(frame.id, output);
  int& received = progress_[k];
  ++received;
  FIFOMS_ASSERT(received <= frame.cells, "more cells than the frame has");
  if (received < frame.cells) return std::nullopt;
  progress_.erase(k);
  return Completion{
      .frame = frame.id,
      .output = output,
      .completed = now,
      .latency = now - frame.created,
  };
}

}  // namespace fifoms
