// Packet: one fixed-size multicast cell arriving at an input port.
//
// The paper assumes fixed-length packets, so the "payload" is modelled as
// a 64-bit tag derived from the packet id; the switch models propagate the
// tag to every delivered copy, which lets tests verify that the data path
// (and not just the bookkeeping) delivers the right payload to the right
// output.
#pragma once

#include "common/port_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fifoms {

struct Packet {
  PacketId id = kNoPacket;
  PortId input = kNoPort;
  SlotTime arrival = 0;
  PortSet destinations;
  /// QoS class, 0 = highest priority (library extension; the paper's
  /// traffic is single-class).  Bounded by kMaxPriority.
  int priority = 0;

  int fanout() const { return destinations.count(); }

  /// Deterministic payload stand-in used for data-path verification.
  std::uint64_t payload_tag() const {
    std::uint64_t s = id ^ 0xa076'1d64'78bd'642fULL;
    return splitmix64(s);
  }
};

}  // namespace fifoms
