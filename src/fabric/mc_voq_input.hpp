// McVoqInput: one input port of the paper's multicast VOQ switch.
//
// This is the core queue structure of Section II: a buffer of data cells
// (one per unserved packet, payload stored once) plus N virtual output
// queues of address cells.  An address cell is a placeholder for one
// (packet, destination) pair and carries the packet's arrival time stamp
// and a handle to its data cell.  accept() implements the preprocessing
// algorithm of Table 1; serve_hol() implements the post-transmission
// processing of Table 2 for one granted address cell.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fabric/data_cell_pool.hpp"
#include "fabric/packet.hpp"
#include "sched/kernels.hpp"

namespace fifoms {

/// The paper's address cell: {timeStamp, pDataCell} plus the packet id
/// (carried for statistics; a hardware implementation would not store it).
///
/// `weight` is the scheduling key FIFOMS arbitrates on.  For the paper's
/// single-class traffic it equals the time stamp; with QoS classes it is
/// priority-major: (priority << 48) | arrival — a strictly smaller weight
/// means "serve first", so class 0 beats class 1 regardless of age while
/// FIFO order is preserved within a class.  Delay statistics always use
/// `timestamp` (the real arrival slot).
struct AddressCell {
  SlotTime timestamp = 0;
  std::uint64_t weight = 0;
  DataCellRef data;
  PacketId packet = kNoPacket;
};

/// The priority-major scheduling weight of a packet.
inline std::uint64_t scheduling_weight(int priority, SlotTime arrival) {
  FIFOMS_ASSERT(priority >= 0 && priority <= kMaxPriority,
                "priority out of range");
  FIFOMS_ASSERT(arrival >= 0 && arrival <= kMaxWeightSlot,
                "arrival slot too large for a scheduling weight");
  return (static_cast<std::uint64_t>(priority) << 48) |
         static_cast<std::uint64_t>(arrival);
}

class McVoqInput {
 public:
  /// `num_classes` > 1 enables the QoS extension: each virtual output
  /// queue is split into per-class FIFO sub-queues and hol() returns the
  /// smallest-weight head (strict priority across classes, FIFO within).
  /// The default of 1 is exactly the paper's structure.
  McVoqInput(PortId input, int num_outputs, int num_classes = 1);

  PortId port() const { return input_; }
  int num_outputs() const { return num_outputs_; }
  int num_classes() const { return num_classes_; }

  /// Packet preprocessing (paper Table 1): create one data cell and one
  /// address cell per destination, appended to the matching VOQs.
  void accept(const Packet& packet);

  bool voq_empty(PortId output) const;
  std::size_t voq_size(PortId output) const;

  /// Outputs whose VOQ holds at least one address cell (any class).
  /// Maintained incrementally by accept()/serve_hol()/clear(), so the
  /// scheduler's request step is a bitword scan instead of an
  /// every-(input, output) emptiness probe.
  const PortSet& occupied() const { return occupied_; }

  /// Head-of-line address cell for `output`: the smallest-weight head
  /// across the per-class sub-queues (must be non-empty).
  const AddressCell& hol(PortId output) const;

  /// The HOL weight plane: element o is hol(o).weight, or kWeightInfinity
  /// when VOQ o is empty.  Maintained incrementally by accept()/
  /// serve_hol()/purge_output()/clear() alongside occupied(), so the
  /// scheduler's request step is a contiguous array scan instead of a
  /// ring-buffer probe per (input, output) pair.  The span is padded with
  /// kWeightInfinity to a multiple of 64 entries: word-parallel kernels
  /// may form `data() + 64 * w` for every word w that has an occupied()
  /// bit, without an end-of-array special case.
  std::span<const std::uint64_t> hol_weights() const { return hol_weights_; }

  /// Smallest weight-plane entry — the weight this input would request
  /// with in a FIFOMS round — and the set of outputs carrying it.
  /// kWeightInfinity / empty when nothing is queued.  Maintained
  /// incrementally across accept()/serve_hol(): serving part of a cell's
  /// fanout only shrinks the mask, so the full plane rescan happens only
  /// when the last minimum-weight copy leaves (roughly once per completed
  /// cell, not once per scheduler round — the scheduler's request fast
  /// path depends on this).
  std::uint64_t hol_min_weight() const { return hol_min_.weight; }
  const PortSet& hol_min_outputs() const { return hol_min_.carriers; }

  /// Serve the HOL address cell of `output`: remove it from the queue,
  /// decrement the data cell's fanoutCounter and destroy the data cell when
  /// it reaches zero.  Returns the served address cell (still carrying a
  /// handle that may now be stale) plus the payload tag that was sent.
  struct Served {
    AddressCell cell;
    std::uint64_t payload_tag = 0;
    bool data_cell_destroyed = false;
  };
  Served serve_hol(PortId output);

  /// Drain every address cell queued for `output` (all classes), serving
  /// each through serve_hol() so fanout counters, the data-cell pool and
  /// the occupied() set stay exactly consistent.  Used by the purge
  /// degradation policy when `output` has failed; the drained cells are
  /// appended to `out` so the caller can account for the discarded
  /// copies.  No-op when the VOQ is already empty.
  void purge_output(PortId output, std::vector<Served>& out);

  /// Number of live data cells — the paper's queue-size metric for the
  /// multicast VOQ switch ("how many unsent packets an input needs to hold").
  std::size_t data_cell_count() const { return pool_.live_count(); }

  /// Total address cells over all VOQs (pending copies).
  std::size_t address_cell_count() const;

  const DataCell& data(DataCellRef ref) const { return pool_.get(ref); }
  const DataCellPool& pool() const { return pool_; }

  /// Read-only view of one (class, output) sub-queue, head first — the
  /// structural-audit and test surface (MatchingAuditor walks every
  /// address cell each slot to cross-check fanout counters).
  const RingBuffer<AddressCell>& address_cells(int priority,
                                               PortId output) const {
    return voq(priority, output);
  }

  /// Deterministic state-injection hook for the bounded verifier
  /// (src/verify/) and the fuzz harnesses: drop all queued state and
  /// rebuild it from an explicit packet list.  Packets must belong to
  /// this input, carry strictly increasing arrival slots (the one-arrival
  /// -per-slot contract the preprocessing algorithm assumes) and
  /// non-empty destination sets.  Equivalent to clear() followed by
  /// accept() per packet, so injected states are indistinguishable from
  /// organically reached ones.
  void inject_queue_state(std::span<const Packet> packets);

  /// Drop all queued state (simulation reset).
  void clear();

 private:
  RingBuffer<AddressCell>& voq(int priority, PortId output);
  const RingBuffer<AddressCell>& voq(int priority, PortId output) const;
  /// Class whose sub-queue head has the smallest weight; -1 if all empty.
  int hol_class(PortId output) const;
  /// Single write point for the weight plane: stores the new entry and
  /// keeps hol_min_ consistent via kernels::hol_min_update, falling back
  /// to a full kernels::recompute_hol_min rescan when the last carrier
  /// of the minimum rises off it.  occupied_ must already reflect the
  /// change (the rescan covers occupied words only).
  void set_plane(PortId output, std::uint64_t weight);

  PortId input_;
  int num_outputs_;
  int num_classes_;
  DataCellPool pool_;
  std::vector<RingBuffer<AddressCell>> voqs_;  // [class * num_outputs + out]
  PortSet occupied_;  // outputs with a non-empty VOQ, all classes pooled
  // HOL weight per output (kWeightInfinity when empty), padded to a
  // multiple of 64 entries — see hol_weights().
  std::vector<std::uint64_t> hol_weights_;
  // Smallest plane entry and the outputs carrying it — see
  // hol_min_weight().
  kernels::HolMin hol_min_;
};

}  // namespace fifoms
