// SingleFifoInput: one input port of a single input-queued switch
// (paper Fig. 1(b)) — the buffering architecture TATRA and WBA run on.
//
// Each input holds one FIFO of multicast cells.  Only the head-of-line
// cell is visible to the scheduler; its residue (destinations not yet
// served) shrinks across slots under fanout splitting, and the cell
// departs when the residue becomes empty.  The HOL blocking the paper
// attributes to this structure arises here by construction: cells behind
// the head cannot be scheduled at all.
#pragma once

#include <span>
#include <vector>

#include "common/port_set.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"

namespace fifoms {

struct FifoCell {
  PacketId packet = kNoPacket;
  SlotTime arrival = 0;
  PortSet remaining;
  int initial_fanout = 0;
  std::uint64_t payload_tag = 0;
};

class SingleFifoInput {
 public:
  explicit SingleFifoInput(PortId input) : input_(input) {}

  PortId port() const { return input_; }

  void accept(const Packet& packet);

  bool empty() const { return queue_.empty(); }

  /// Packets currently buffered — the queue-size metric for this switch.
  std::size_t queue_size() const { return queue_.size(); }

  const FifoCell& hol() const { return queue_.front(); }

  /// Serve the HOL cell at `outputs` (must be a subset of its residue).
  /// Returns true when the cell fully departed (residue exhausted).
  bool serve_hol(const PortSet& outputs);

  void clear() { queue_.clear(); }

  /// The queue head-to-tail, for snapshot.  Cells are copied verbatim —
  /// residues and initial fanouts are mid-service state that cannot be
  /// reconstructed from the original packets.
  std::vector<FifoCell> cells() const {
    std::vector<FifoCell> out;
    out.reserve(queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i) out.push_back(queue_[i]);
    return out;
  }

  /// Replace the queue with `cells` head-to-tail (restore).
  void restore_cells(std::span<const FifoCell> cells) {
    queue_.clear();
    for (const FifoCell& cell : cells) queue_.push_back(cell);
  }

 private:
  PortId input_;
  RingBuffer<FifoCell> queue_;
};

}  // namespace fifoms
