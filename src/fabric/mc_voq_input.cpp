#include "fabric/mc_voq_input.hpp"

namespace fifoms {

McVoqInput::McVoqInput(PortId input, int num_outputs, int num_classes)
    : input_(input), num_outputs_(num_outputs), num_classes_(num_classes) {
  FIFOMS_ASSERT(num_outputs > 0 && num_outputs <= kMaxPorts,
                "unsupported output count");
  FIFOMS_ASSERT(num_classes >= 1 && num_classes <= kMaxPriority + 1,
                "unsupported class count");
  voqs_.resize(static_cast<std::size_t>(num_outputs) *
               static_cast<std::size_t>(num_classes));
  // Padded to whole 64-entry words so kernels can address the plane by
  // occupied()-word index without a bounds special case.
  hol_weights_.assign(
      (static_cast<std::size_t>(num_outputs) + 63) / 64 * 64, kWeightInfinity);
}

RingBuffer<AddressCell>& McVoqInput::voq(int priority, PortId output) {
  FIFOMS_ASSERT(output >= 0 && output < num_outputs_, "output out of range");
  FIFOMS_ASSERT(priority >= 0 && priority < num_classes_,
                "priority beyond configured class count");
  return voqs_[static_cast<std::size_t>(priority) *
                   static_cast<std::size_t>(num_outputs_) +
               static_cast<std::size_t>(output)];
}

const RingBuffer<AddressCell>& McVoqInput::voq(int priority,
                                               PortId output) const {
  return const_cast<McVoqInput*>(this)->voq(priority, output);
}

// fifoms-analyze: hot-path-root
void McVoqInput::accept(const Packet& packet) {
  FIFOMS_ASSERT(packet.input == input_, "packet injected at wrong input");
  FIFOMS_ASSERT(!packet.destinations.empty(),
                "packet must have at least one destination");

  const DataCellRef data = pool_.allocate(packet);
  const std::uint64_t weight =
      scheduling_weight(packet.priority, packet.arrival);
  for (PortId output : packet.destinations) {
    FIFOMS_ASSERT(output < num_outputs_, "destination beyond switch radix");
    voq(packet.priority, output)
        .push_back(AddressCell{.timestamp = packet.arrival,
                               .weight = weight,
                               .data = data,
                               .packet = packet.id});
    occupied_.insert(output);
    // The appended cell changes the HOL weight only if it became the
    // front of a class that outranks every other occupied class — i.e.
    // exactly when it lowers the plane entry.
    if (weight < hol_weights_[static_cast<std::size_t>(output)])
      set_plane(output, weight);
  }
}

void McVoqInput::set_plane(PortId output, std::uint64_t weight) {
  auto& plane = hol_weights_[static_cast<std::size_t>(output)];
  const std::uint64_t previous = plane;
  if (previous == weight) return;
  plane = weight;
  // Incremental maintenance; the fallback is the word-parallel rescan
  // over occupied words only (the plane's 64-entry padding keeps every
  // such word addressable).  Both are statically proven against the
  // dense spec — see tests/sched/kernel_static_proof.cpp.
  if (kernels::hol_min_update(hol_min_, output, previous, weight))
    hol_min_ = kernels::recompute_hol_min(hol_weights(), occupied_);
}

int McVoqInput::hol_class(PortId output) const {
  // Sub-queue heads are weight-sorted by class construction (class-major
  // weights), so the first non-empty class holds the smallest weight.
  for (int priority = 0; priority < num_classes_; ++priority)
    if (!voq(priority, output).empty()) return priority;
  return -1;
}

bool McVoqInput::voq_empty(PortId output) const {
  return hol_class(output) < 0;
}

std::size_t McVoqInput::voq_size(PortId output) const {
  std::size_t total = 0;
  for (int priority = 0; priority < num_classes_; ++priority)
    total += voq(priority, output).size();
  return total;
}

const AddressCell& McVoqInput::hol(PortId output) const {
  const int priority = hol_class(output);
  FIFOMS_ASSERT(priority >= 0, "hol() on empty VOQ");
  return voq(priority, output).front();
}

// fifoms-analyze: hot-path-root
McVoqInput::Served McVoqInput::serve_hol(PortId output) {
  const int priority = hol_class(output);
  FIFOMS_ASSERT(priority >= 0, "serve_hol on empty VOQ");
  RingBuffer<AddressCell>& queue =
      voq(priority, output);

  Served served;
  served.cell = queue.pop_front();
  served.payload_tag = pool_.get(served.cell.data).payload_tag;
  served.data_cell_destroyed = pool_.release_one(served.cell.data);
  if (queue.empty()) {
    const int next_class = hol_class(output);
    if (next_class < 0) {
      occupied_.erase(output);  // before set_plane: recompute scans occupied
      set_plane(output, kWeightInfinity);
    } else {
      set_plane(output, voq(next_class, output).front().weight);
    }
  } else {
    set_plane(output, queue.front().weight);
  }
  return served;
}

// fifoms-analyze: hot-path-root
void McVoqInput::purge_output(PortId output, std::vector<Served>& out) {
  // Route every drained cell through serve_hol() so the fanout counters,
  // the pool and occupied() follow exactly the normal-service transitions
  // — a purge is indistinguishable from transmission for the bookkeeping.
  // Purges run only while a fault is degrading the switch (never on the
  // fault-free measured path) and callers reuse the scratch vector, so
  // the append below stops allocating after the first degraded slot.
  // fifoms-analyze: allow(hot-path-no-alloc)
  while (!voq_empty(output)) out.push_back(serve_hol(output));
}

std::size_t McVoqInput::address_cell_count() const {
  std::size_t total = 0;
  for (const auto& queue : voqs_) total += queue.size();
  return total;
}

void McVoqInput::inject_queue_state(std::span<const Packet> packets) {
  clear();
  SlotTime last = -1;
  for (const Packet& packet : packets) {
    FIFOMS_ASSERT(packet.arrival > last,
                  "injected packets must have strictly increasing arrivals");
    last = packet.arrival;
    accept(packet);
  }
}

void McVoqInput::clear() {
  pool_.clear();
  for (auto& queue : voqs_) queue.clear();
  occupied_.clear();
  hol_weights_.assign(hol_weights_.size(), kWeightInfinity);
  hol_min_ = kernels::HolMin{};
}

}  // namespace fifoms
