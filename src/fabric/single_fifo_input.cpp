#include "fabric/single_fifo_input.hpp"

namespace fifoms {

void SingleFifoInput::accept(const Packet& packet) {
  FIFOMS_ASSERT(packet.input == input_, "packet injected at wrong input");
  FIFOMS_ASSERT(!packet.destinations.empty(),
                "packet must have at least one destination");
  queue_.push_back(FifoCell{
      .packet = packet.id,
      .arrival = packet.arrival,
      .remaining = packet.destinations,
      .initial_fanout = packet.fanout(),
      .payload_tag = packet.payload_tag(),
  });
}

bool SingleFifoInput::serve_hol(const PortSet& outputs) {
  FIFOMS_ASSERT(!queue_.empty(), "serve_hol on empty input FIFO");
  FifoCell& cell = queue_.front();
  FIFOMS_ASSERT(outputs.is_subset_of(cell.remaining),
                "serving outputs not in the HOL cell's residue");
  FIFOMS_ASSERT(!outputs.empty(), "serve_hol with no outputs");
  cell.remaining -= outputs;
  if (!cell.remaining.empty()) return false;
  queue_.pop_front();
  return true;
}

}  // namespace fifoms
