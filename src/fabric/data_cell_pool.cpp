#include "fabric/data_cell_pool.hpp"

namespace fifoms {

DataCellRef DataCellPool::allocate(const Packet& packet) {
  const int fanout = packet.fanout();
  FIFOMS_ASSERT(fanout > 0, "data cell requires at least one destination");

  std::uint32_t index;
  if (free_head_ != DataCellRef::kInvalidIndex) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    FIFOMS_ASSERT(slots_.size() < DataCellRef::kInvalidIndex,
                  "data cell pool exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    // Pool growth happens only when the freelist is dry — once the pool
    // has reached the run's peak occupancy every allocate() is a O(1)
    // freelist pop, so the steady-state slot path never allocates.
    // fifoms-analyze: allow(hot-path-no-alloc)
    slots_.emplace_back();
  }

  Slot& slot = slots_[index];
  slot.live = true;
  slot.cell = DataCell{
      .packet = packet.id,
      .timestamp = packet.arrival,
      .fanout_counter = fanout,
      .initial_fanout = fanout,
      .payload_tag = packet.payload_tag(),
  };
  ++live_count_;
  return DataCellRef{index, slot.generation};
}

const DataCellPool::Slot& DataCellPool::checked_slot(DataCellRef ref) const {
  FIFOMS_ASSERT(ref.valid() && ref.index < slots_.size(),
                "invalid data cell handle");
  const Slot& slot = slots_[ref.index];
  FIFOMS_ASSERT(slot.live && slot.generation == ref.generation,
                "stale data cell handle (cell already destroyed)");
  return slot;
}

DataCell& DataCellPool::get(DataCellRef ref) {
  return const_cast<Slot&>(checked_slot(ref)).cell;
}

const DataCell& DataCellPool::get(DataCellRef ref) const {
  return checked_slot(ref).cell;
}

bool DataCellPool::is_live(DataCellRef ref) const {
  if (!ref.valid() || ref.index >= slots_.size()) return false;
  const Slot& slot = slots_[ref.index];
  return slot.live && slot.generation == ref.generation;
}

bool DataCellPool::release_one(DataCellRef ref) {
  Slot& slot = const_cast<Slot&>(checked_slot(ref));
  FIFOMS_ASSERT(slot.cell.fanout_counter > 0,
                "release_one on fully served data cell");
  if (--slot.cell.fanout_counter > 0) return false;

  // fanoutCounter hit zero: destroy the cell, return the buffer slot.
  slot.live = false;
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = ref.index;
  --live_count_;
  return true;
}

void DataCellPool::clear() {
  slots_.clear();
  free_head_ = DataCellRef::kInvalidIndex;
  live_count_ = 0;
}

}  // namespace fifoms
