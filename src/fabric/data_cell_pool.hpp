// DataCell and DataCellPool: the "data cell" half of the paper's queue
// structure (Section II).
//
// A data cell stores the payload of a packet exactly once, together with a
// fanoutCounter that is decremented as copies are delivered; when the
// counter reaches zero the cell is destroyed and its buffer slot returned.
//
// Cells live in a slab pool indexed by 32-bit handles with a generation
// counter.  Address cells reference data cells through these handles, so a
// stale reference (use after the fanout counter hit zero) is detected
// immediately instead of silently reading recycled memory — the classic
// failure mode of pointer-based implementations of this structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/panic.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"

namespace fifoms {

/// Generation-checked handle to a DataCell inside a DataCellPool.
struct DataCellRef {
  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  bool valid() const { return index != kInvalidIndex; }
  bool operator==(const DataCellRef&) const = default;
};

struct DataCell {
  PacketId packet = kNoPacket;
  /// Arrival slot of the packet; shared by all of its address cells.
  SlotTime timestamp = 0;
  /// Destinations not yet served.  Destruction happens at zero.
  int fanout_counter = 0;
  int initial_fanout = 0;
  /// Simulated payload (see Packet::payload_tag).
  std::uint64_t payload_tag = 0;
};

class DataCellPool {
 public:
  /// Create a data cell for `packet` with fanout_counter = packet.fanout().
  DataCellRef allocate(const Packet& packet);

  /// Access a live cell; panics if the handle is stale or invalid.
  DataCell& get(DataCellRef ref);
  const DataCell& get(DataCellRef ref) const;

  bool is_live(DataCellRef ref) const;

  /// Decrement the fanout counter after one copy is delivered.
  /// Returns true when the cell was destroyed (counter reached zero).
  bool release_one(DataCellRef ref);

  /// Number of live cells — the paper's per-input "queue size" metric.
  std::size_t live_count() const { return live_count_; }

  /// Total slots ever allocated (high-water mark of the buffer).
  std::size_t capacity() const { return slots_.size(); }

  /// Destroy all cells (simulation reset).
  void clear();

 private:
  struct Slot {
    DataCell cell;
    std::uint32_t generation = 0;
    std::uint32_t next_free = DataCellRef::kInvalidIndex;
    bool live = false;
  };

  const Slot& checked_slot(DataCellRef ref) const;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = DataCellRef::kInvalidIndex;
  std::size_t live_count_ = 0;
};

}  // namespace fifoms
