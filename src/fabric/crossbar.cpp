#include "fabric/crossbar.hpp"

#include "common/panic.hpp"

namespace fifoms {

Crossbar::Crossbar(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  FIFOMS_ASSERT(num_inputs > 0 && num_inputs <= kMaxPorts,
                "unsupported input count");
  FIFOMS_ASSERT(num_outputs > 0 && num_outputs <= kMaxPorts,
                "unsupported output count");
  output_source_.assign(static_cast<std::size_t>(num_outputs), kNoPort);
  input_targets_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

void Crossbar::configure(std::span<const PortSet> input_to_outputs) {
  FIFOMS_ASSERT(static_cast<int>(input_to_outputs.size()) == num_inputs_,
                "configure expects one PortSet per input");
  release();
  for (PortId input = 0; input < num_inputs_; ++input) {
    const PortSet& targets = input_to_outputs[static_cast<std::size_t>(input)];
    for (PortId output : targets) {
      FIFOMS_ASSERT(output < num_outputs_, "crosspoint beyond output range");
      PortId& source = output_source_[static_cast<std::size_t>(output)];
      FIFOMS_ASSERT(source == kNoPort,
                    "two inputs driving the same output in one slot");
      source = input;
    }
    input_targets_[static_cast<std::size_t>(input)] = targets;
  }
}

void Crossbar::release() {
  for (auto& source : output_source_) source = kNoPort;
  for (auto& targets : input_targets_) targets.clear();
}

PortId Crossbar::input_for_output(PortId output) const {
  FIFOMS_ASSERT(output >= 0 && output < num_outputs_, "output out of range");
  return output_source_[static_cast<std::size_t>(output)];
}

const PortSet& Crossbar::outputs_for_input(PortId input) const {
  FIFOMS_ASSERT(input >= 0 && input < num_inputs_, "input out of range");
  return input_targets_[static_cast<std::size_t>(input)];
}

int Crossbar::closed_crosspoints() const {
  int total = 0;
  for (const auto& targets : input_targets_) total += targets.count();
  return total;
}

int Crossbar::active_inputs() const {
  int total = 0;
  for (const auto& targets : input_targets_)
    if (!targets.empty()) ++total;
  return total;
}

}  // namespace fifoms
