#include "fabric/crossbar.hpp"

#include "common/panic.hpp"

namespace fifoms {

Crossbar::Crossbar(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  FIFOMS_ASSERT(num_inputs > 0 && num_inputs <= kMaxPorts,
                "unsupported input count");
  FIFOMS_ASSERT(num_outputs > 0 && num_outputs <= kMaxPorts,
                "unsupported output count");
  output_source_.assign(static_cast<std::size_t>(num_outputs), kNoPort);
}

// fifoms-analyze: hot-path-root
void Crossbar::configure(std::span<const PortSet> input_to_outputs) {
  FIFOMS_ASSERT(static_cast<int>(input_to_outputs.size()) == num_inputs_,
                "configure expects one PortSet per input");
  // Word-parallel legality check: every input's targets must be disjoint
  // from everything claimed so far and inside the output range.  This is
  // the whole cost of configure() — the sets themselves are borrowed.
  PortSet claimed;
  for (const PortSet& targets : input_to_outputs) {
    FIFOMS_ASSERT(!targets.intersects(claimed),
                  "two inputs driving the same output in one slot");
    claimed |= targets;
  }
  claimed -= PortSet::all(num_outputs_);
  FIFOMS_ASSERT(claimed.empty(), "crosspoint beyond output range");
  input_targets_ = input_to_outputs;
  output_source_valid_ = false;
}

void Crossbar::release() {
  input_targets_ = {};
  output_source_valid_ = false;
}

PortId Crossbar::input_for_output(PortId output) const {
  FIFOMS_ASSERT(output >= 0 && output < num_outputs_, "output out of range");
  if (!output_source_valid_) {
    for (auto& source : output_source_) source = kNoPort;
    for (PortId input = 0;
         input < static_cast<PortId>(input_targets_.size()); ++input) {
      for (PortId target : input_targets_[static_cast<std::size_t>(input)])
        output_source_[static_cast<std::size_t>(target)] = input;
    }
    output_source_valid_ = true;
  }
  return output_source_[static_cast<std::size_t>(output)];
}

const PortSet& Crossbar::outputs_for_input(PortId input) const {
  FIFOMS_ASSERT(input >= 0 && input < num_inputs_, "input out of range");
  if (input_targets_.empty()) {
    static const PortSet kIdle;
    return kIdle;
  }
  return input_targets_[static_cast<std::size_t>(input)];
}

int Crossbar::closed_crosspoints() const {
  int total = 0;
  for (const auto& targets : input_targets_) total += targets.count();
  return total;
}

int Crossbar::active_inputs() const {
  int total = 0;
  for (const auto& targets : input_targets_)
    if (!targets.empty()) ++total;
  return total;
}

}  // namespace fifoms
