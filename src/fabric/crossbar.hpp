// Crossbar: the multicast-capable switching fabric.
//
// A crossbar configuration is a set of closed crosspoints (input, output).
// The fabric enforces the two physical constraints of a crossbar:
//   * each output is driven by at most one input per slot, and
//   * an input drives every output it is connected to with the same cell
//     (multicast is free: one input row can close many crosspoints).
// Schedulers produce matchings; the crossbar validates them before any
// transmission happens, so an illegal matching is a hard error rather than
// a silently wrong simulation.
//
// configure() borrows the caller's per-input grant sets for the duration
// of the slot instead of copying them — the matching that produced them
// outlives the transmission loop by construction (VoqSwitch::step holds
// it), and release() drops the borrow.  The per-output source table is
// only materialised when input_for_output() is actually asked for (test
// and audit surface, not the transmission hot path).
#pragma once

#include <span>
#include <vector>

#include "common/port_set.hpp"
#include "common/types.hpp"

namespace fifoms {

class Crossbar {
 public:
  Crossbar(int num_inputs, int num_outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  /// Close the crosspoints described by `input_to_outputs` (one PortSet per
  /// input).  Panics if two inputs claim the same output.  The span is
  /// borrowed until release() or the next configure(); the caller must
  /// keep it alive and unchanged for that long.
  void configure(std::span<const PortSet> input_to_outputs);

  /// Release all crosspoints (and the borrowed configuration).
  void release();

  /// Input currently driving `output`, or kNoPort.
  PortId input_for_output(PortId output) const;

  /// Outputs currently driven by `input` (empty if idle).
  const PortSet& outputs_for_input(PortId input) const;

  /// Number of closed (input, output) crosspoints.
  int closed_crosspoints() const;

  /// Number of distinct inputs transmitting.
  int active_inputs() const;

 private:
  int num_inputs_;
  int num_outputs_;
  // Borrowed grant sets; empty span when released.
  std::span<const PortSet> input_targets_;
  // Lazily derived inverse of input_targets_ — see input_for_output().
  mutable std::vector<PortId> output_source_;
  mutable bool output_source_valid_ = false;
};

}  // namespace fifoms
