// HybridInput: the queue structure of practical multicast routers before
// the paper's address-cell scheme — N unicast VOQs plus ONE multicast
// FIFO per input (e.g. McKeown's Tiny Tera / ESLIP design).
//
// Unicast packets (fanout 1) go to the VOQ of their output; multicast
// packets (fanout > 1) share a single FIFO, so multicast traffic suffers
// HOL blocking *within its own class* while unicast traffic does not.
// This is the structural middle ground between the paper's Fig. 1(b)
// and Fig. 1(c), and the substrate the ESLIP scheduler runs on.
#pragma once

#include <vector>

#include "common/port_set.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"
#include "fabric/single_fifo_input.hpp"  // FifoCell

namespace fifoms {

struct UnicastCell {
  PacketId packet = kNoPacket;
  SlotTime arrival = 0;
  std::uint64_t payload_tag = 0;
};

class HybridInput {
 public:
  HybridInput(PortId input, int num_outputs);

  PortId port() const { return input_; }
  int num_outputs() const { return num_outputs_; }

  void accept(const Packet& packet);

  // --- unicast side -----------------------------------------------------
  bool voq_empty(PortId output) const { return voq(output).empty(); }
  /// Outputs whose unicast VOQ is non-empty.  Maintained incrementally by
  /// accept()/serve_unicast()/clear(), so the ESLIP grant step can mask
  /// unicast requests word-parallel instead of probing every VOQ.
  const PortSet& unicast_occupied() const { return unicast_occupied_; }
  std::size_t voq_size(PortId output) const { return voq(output).size(); }
  const UnicastCell& voq_hol(PortId output) const {
    return voq(output).front();
  }
  UnicastCell serve_unicast(PortId output);

  // --- multicast side ---------------------------------------------------
  bool mcq_empty() const { return mcq_.empty(); }
  std::size_t mcq_size() const { return mcq_.size(); }
  const FifoCell& mcq_hol() const { return mcq_.front(); }
  /// Serve part of the multicast HOL residue; true when the cell departs.
  bool serve_multicast(const PortSet& outputs);

  /// Packets buffered (unicast cells + multicast packets) — the
  /// queue-size metric for this structure.
  std::size_t queue_size() const;

  /// Copies still to transmit: unicast cells plus every queued multicast
  /// cell's remaining fanout (conservation checks).
  std::size_t pending_copies() const;

  void clear();

 private:
  RingBuffer<UnicastCell>& voq(PortId output);
  const RingBuffer<UnicastCell>& voq(PortId output) const;

  PortId input_;
  int num_outputs_;
  std::vector<RingBuffer<UnicastCell>> voqs_;
  RingBuffer<FifoCell> mcq_;
  PortSet unicast_occupied_;  // outputs with a non-empty unicast VOQ
};

}  // namespace fifoms
