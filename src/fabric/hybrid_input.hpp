// HybridInput: the queue structure of practical multicast routers before
// the paper's address-cell scheme — N unicast VOQs plus ONE multicast
// FIFO per input (e.g. McKeown's Tiny Tera / ESLIP design).
//
// Unicast packets (fanout 1) go to the VOQ of their output; multicast
// packets (fanout > 1) share a single FIFO, so multicast traffic suffers
// HOL blocking *within its own class* while unicast traffic does not.
// This is the structural middle ground between the paper's Fig. 1(b)
// and Fig. 1(c), and the substrate the ESLIP scheduler runs on.
#pragma once

#include <span>
#include <vector>

#include "common/port_set.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"
#include "fabric/single_fifo_input.hpp"  // FifoCell

namespace fifoms {

struct UnicastCell {
  PacketId packet = kNoPacket;
  SlotTime arrival = 0;
  std::uint64_t payload_tag = 0;
};

class HybridInput {
 public:
  HybridInput(PortId input, int num_outputs);

  PortId port() const { return input_; }
  int num_outputs() const { return num_outputs_; }

  void accept(const Packet& packet);

  // --- unicast side -----------------------------------------------------
  bool voq_empty(PortId output) const { return voq(output).empty(); }
  /// Outputs whose unicast VOQ is non-empty.  Maintained incrementally by
  /// accept()/serve_unicast()/clear(), so the ESLIP grant step can mask
  /// unicast requests word-parallel instead of probing every VOQ.
  const PortSet& unicast_occupied() const { return unicast_occupied_; }
  std::size_t voq_size(PortId output) const { return voq(output).size(); }
  const UnicastCell& voq_hol(PortId output) const {
    return voq(output).front();
  }
  UnicastCell serve_unicast(PortId output);

  // --- multicast side ---------------------------------------------------
  bool mcq_empty() const { return mcq_.empty(); }
  std::size_t mcq_size() const { return mcq_.size(); }
  const FifoCell& mcq_hol() const { return mcq_.front(); }
  /// Serve part of the multicast HOL residue; true when the cell departs.
  bool serve_multicast(const PortSet& outputs);

  /// Packets buffered (unicast cells + multicast packets) — the
  /// queue-size metric for this structure.
  std::size_t queue_size() const;

  /// Copies still to transmit: unicast cells plus every queued multicast
  /// cell's remaining fanout (conservation checks).
  std::size_t pending_copies() const;

  void clear();

  // --- snapshot/restore -------------------------------------------------
  /// One VOQ head-to-tail.
  std::vector<UnicastCell> voq_cells(PortId output) const {
    const RingBuffer<UnicastCell>& q = voq(output);
    std::vector<UnicastCell> out;
    out.reserve(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) out.push_back(q[i]);
    return out;
  }
  /// The multicast FIFO head-to-tail (verbatim cells, mid-service residue).
  std::vector<FifoCell> mcq_cells() const {
    std::vector<FifoCell> out;
    out.reserve(mcq_.size());
    for (std::size_t i = 0; i < mcq_.size(); ++i) out.push_back(mcq_[i]);
    return out;
  }
  /// Replace one VOQ head-to-tail, maintaining the occupied mask.
  void restore_unicast(PortId output, std::span<const UnicastCell> cells) {
    RingBuffer<UnicastCell>& q = voq(output);
    q.clear();
    for (const UnicastCell& cell : cells) q.push_back(cell);
    if (q.empty())
      unicast_occupied_.erase(output);
    else
      unicast_occupied_.insert(output);
  }
  /// Replace the multicast FIFO head-to-tail.
  void restore_multicast(std::span<const FifoCell> cells) {
    mcq_.clear();
    for (const FifoCell& cell : cells) mcq_.push_back(cell);
  }

 private:
  RingBuffer<UnicastCell>& voq(PortId output);
  const RingBuffer<UnicastCell>& voq(PortId output) const;

  PortId input_;
  int num_outputs_;
  std::vector<RingBuffer<UnicastCell>> voqs_;
  RingBuffer<FifoCell> mcq_;
  PortSet unicast_occupied_;  // outputs with a non-empty unicast VOQ
};

}  // namespace fifoms
