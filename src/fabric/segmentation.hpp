// Frame segmentation and reassembly — the variable-length front end of a
// fixed-size-cell switch.
//
// The paper (like most crossbar scheduling work) assumes fixed-length
// packets; a real router receives variable-length frames, chops them into
// cells at ingress, schedules the cells independently and reassembles at
// egress.  This module provides that shell so the examples can report
// *frame*-level latency — the number an application actually sees:
//
//   * Segmenter      — frame -> cell count for a given cell payload size;
//   * FrameTraffic   — TrafficModel adapter: generates variable-length
//     multicast frames and emits their cells one per slot per input (the
//     link feeds the switch at line rate);
//   * Reassembler    — egress tracker: feed per-cell deliveries, get
//     completed (frame, output) records with frame latency.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/panic.hpp"
#include "common/port_set.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms {

using FrameId = std::uint64_t;

struct Frame {
  FrameId id = 0;
  PortId input = kNoPort;
  SlotTime created = 0;   ///< slot the frame reached the ingress
  int length_bytes = 0;
  int cells = 0;          ///< segmentation result
  PortSet destinations;
};

class Segmenter {
 public:
  explicit Segmenter(int cell_payload_bytes);

  int cell_payload_bytes() const { return cell_payload_bytes_; }

  /// Cells needed for a frame of `length_bytes` (>= 1; a zero-length
  /// frame still occupies one cell for its header).
  int cells_for(int length_bytes) const;

 private:
  int cell_payload_bytes_;
};

/// Generates multicast frames and feeds their cells into the slot model.
///
/// Frame process per input: Bernoulli(frame_p) new-frame arrivals with
/// length uniform on [min_bytes, max_bytes] and destinations drawn with
/// per-output probability b (empty draws redrawn).  Cells of queued
/// frames are emitted one per slot; a new frame queues behind the cells
/// of earlier frames (ingress serialisation).  Because the switch sees
/// only cells, every scheduler runs unmodified.
class FrameTraffic final : public TrafficModel {
 public:
  FrameTraffic(int num_ports, Segmenter segmenter, double frame_p,
               int min_bytes, int max_bytes, double b);

  std::string_view name() const override { return "frames"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  /// Frame whose cell was returned by the most recent arrival() for the
  /// given input (valid immediately after a non-empty arrival()).
  const Frame& last_frame(PortId input) const;

  /// Index of that cell within its frame, 0-based.
  int last_cell_index(PortId input) const;

  /// All frames ever created (for egress reassembly bookkeeping).
  const std::vector<Frame>& frames() const { return frames_; }

  double mean_cells_per_frame() const;

 private:
  struct InputState {
    std::deque<FrameId> pending;  // frames with cells still to emit
    int next_cell = 0;            // cell index within the front frame
    FrameId last_frame = 0;
    int last_cell = -1;
  };

  Segmenter segmenter_;
  double frame_p_;
  int min_bytes_;
  int max_bytes_;
  double b_;
  std::vector<Frame> frames_;
  std::vector<InputState> inputs_;
};

/// Egress reassembly: complete a (frame, output) when all its cells have
/// been delivered to that output.
class Reassembler {
 public:
  struct Completion {
    FrameId frame = 0;
    PortId output = kNoPort;
    SlotTime completed = 0;   ///< slot the last cell arrived
    SlotTime latency = 0;     ///< completed - frame creation slot
  };

  /// Record one delivered cell; returns the completion record when this
  /// cell was the frame's last at that output.
  std::optional<Completion> on_cell(const Frame& frame, PortId output,
                                    SlotTime now);

  std::size_t incomplete() const { return progress_.size(); }

 private:
  static std::uint64_t key(FrameId frame, PortId output) {
    return (frame << 9) ^ static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(output));
  }

  std::unordered_map<std::uint64_t, int> progress_;  // cells received
};

}  // namespace fifoms
