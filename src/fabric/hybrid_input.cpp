#include "fabric/hybrid_input.hpp"

#include "common/panic.hpp"

namespace fifoms {

HybridInput::HybridInput(PortId input, int num_outputs)
    : input_(input), num_outputs_(num_outputs) {
  FIFOMS_ASSERT(num_outputs > 0 && num_outputs <= kMaxPorts,
                "unsupported output count");
  voqs_.resize(static_cast<std::size_t>(num_outputs));
}

RingBuffer<UnicastCell>& HybridInput::voq(PortId output) {
  FIFOMS_ASSERT(output >= 0 && output < num_outputs_, "output out of range");
  return voqs_[static_cast<std::size_t>(output)];
}

const RingBuffer<UnicastCell>& HybridInput::voq(PortId output) const {
  return const_cast<HybridInput*>(this)->voq(output);
}

void HybridInput::accept(const Packet& packet) {
  FIFOMS_ASSERT(packet.input == input_, "packet injected at wrong input");
  FIFOMS_ASSERT(!packet.destinations.empty(),
                "packet must have at least one destination");
  if (packet.fanout() == 1) {
    const PortId output = packet.destinations.first();
    FIFOMS_ASSERT(output < num_outputs_, "destination beyond switch radix");
    voq(output).push_back(UnicastCell{
        .packet = packet.id,
        .arrival = packet.arrival,
        .payload_tag = packet.payload_tag(),
    });
    unicast_occupied_.insert(output);
    return;
  }
  mcq_.push_back(FifoCell{
      .packet = packet.id,
      .arrival = packet.arrival,
      .remaining = packet.destinations,
      .initial_fanout = packet.fanout(),
      .payload_tag = packet.payload_tag(),
  });
}

UnicastCell HybridInput::serve_unicast(PortId output) {
  RingBuffer<UnicastCell>& queue = voq(output);
  FIFOMS_ASSERT(!queue.empty(), "serve_unicast on empty VOQ");
  UnicastCell cell = queue.pop_front();
  if (queue.empty()) unicast_occupied_.erase(output);
  return cell;
}

bool HybridInput::serve_multicast(const PortSet& outputs) {
  FIFOMS_ASSERT(!mcq_.empty(), "serve_multicast on empty multicast queue");
  FifoCell& cell = mcq_.front();
  FIFOMS_ASSERT(outputs.is_subset_of(cell.remaining),
                "serving outputs not in the multicast HOL residue");
  FIFOMS_ASSERT(!outputs.empty(), "serve_multicast with no outputs");
  cell.remaining -= outputs;
  if (!cell.remaining.empty()) return false;
  mcq_.pop_front();
  return true;
}

std::size_t HybridInput::queue_size() const {
  std::size_t total = mcq_.size();
  for (const auto& queue : voqs_) total += queue.size();
  return total;
}

std::size_t HybridInput::pending_copies() const {
  std::size_t total = 0;
  for (const auto& queue : voqs_) total += queue.size();
  for (std::size_t k = 0; k < mcq_.size(); ++k)
    total += static_cast<std::size_t>(mcq_[k].remaining.count());
  return total;
}

void HybridInput::clear() {
  for (auto& queue : voqs_) queue.clear();
  mcq_.clear();
  unicast_occupied_.clear();
}

}  // namespace fifoms
