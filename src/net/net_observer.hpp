// NetObserver: per-slot instrumentation hook for NetworkFabric.
//
// The single-switch SlotObserver seam cannot express what a network-level
// checker needs: which internal link a copy crossed, which switch a fault
// event hit, and the end-of-slot fabric state.  NetObserver is the
// network analogue — NetworkAuditor (net_auditor.hpp) is the standard
// implementation, rebuilding an independent conservation/ordering ledger
// from exactly this event stream.  External deliveries still flow through
// the ordinary SwitchModel/SlotObserver path via the Simulator, so
// metrics and tracing keep working unchanged.
#pragma once

#include "common/types.hpp"
#include "fabric/packet.hpp"
#include "sim/switch_model.hpp"

namespace fifoms::fault {
struct FaultEvent;
}  // namespace fifoms::fault

namespace fifoms::net {

class NetworkFabric;

/// One copy crossing an internal link: served by `from_sw` on `output`,
/// re-injected into `to_sw` at `input` the same slot (the link adds one
/// slot of latency because the downstream switch schedules it next slot).
struct HopEvent {
  SlotTime slot = 0;
  int from_sw = -1;
  PortId output = kNoPort;
  int to_sw = -1;
  PortId input = kNoPort;
  /// The per-hop packet as injected downstream: original id, arrival
  /// re-stamped to `slot`, destinations expanded for the next hop.
  Packet packet;
  /// Original external arrival slot of the flight (for ordering checks).
  SlotTime flight_arrival = 0;
};

class NetObserver {
 public:
  virtual ~NetObserver() = default;

  /// A packet accepted at an external input, before any switch stepped.
  virtual void on_external_inject(const NetworkFabric& fabric,
                                  const Packet& packet) {
    (void)fabric;
    (void)packet;
  }

  /// One copy crossed an internal link this slot.
  virtual void on_hop(const NetworkFabric& fabric, const HopEvent& event) {
    (void)fabric;
    (void)event;
  }

  /// A fault event was applied to switch `sw` at the top of the slot.
  virtual void on_net_fault_event(SlotTime now, int sw,
                                  const fault::FaultEvent& event) {
    (void)now;
    (void)sw;
    (void)event;
  }

  /// End of slot: every switch stepped, every transfer processed.
  /// `result` holds this slot's external deliveries and purged copies
  /// (both reported with the flight's ORIGINAL arrival slot).
  virtual void on_net_slot(SlotTime now, const NetworkFabric& fabric,
                           const SlotResult& result) {
    (void)now;
    (void)fabric;
    (void)result;
  }
};

}  // namespace fifoms::net
