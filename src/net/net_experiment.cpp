#include "net/net_experiment.hpp"

#include <utility>

#include "core/fifoms.hpp"

namespace fifoms::net {

namespace {

NetworkFabric::SchedulerFactory fifoms_elements() {
  return [] { return std::make_unique<FifomsScheduler>(); };
}

}  // namespace

int clos3_radix_for_ports(int num_ports) {
  for (int k = 1; k * k <= num_ports; ++k)
    if (k * k == num_ports) return k;
  FIFOMS_ASSERT(false, "clos3 needs a perfect-square external port count");
}

int fat_tree2_radix_for_ports(int num_ports) {
  for (int k = 2; k * (k / 2) <= num_ports; k += 2)
    if (k * (k / 2) == num_ports) return k;
  FIFOMS_ASSERT(false,
                "fat_tree2 needs num_ports = k*k/2 for an even radix k");
}

SwitchFactory make_net(std::string label,
                       std::function<Topology(int num_ports)> topology,
                       NetworkFabric::SchedulerFactory scheduler,
                       NetworkFabric::Options options) {
  return SwitchFactory{
      std::move(label),
      [topology = std::move(topology), scheduler = std::move(scheduler),
       options](int ports) -> std::unique_ptr<SwitchModel> {
        return std::make_unique<NetworkFabric>(topology(ports), scheduler,
                                               options);
      }};
}

SwitchFactory make_clos3_fifoms(NetworkFabric::Options options) {
  return make_net(
      "Clos3-FIFOMS",
      [](int ports) { return Topology::clos3(clos3_radix_for_ports(ports)); },
      fifoms_elements(), options);
}

SwitchFactory make_fat_tree2_fifoms(NetworkFabric::Options options) {
  return make_net(
      "FatTree2-FIFOMS",
      [](int ports) {
        return Topology::fat_tree2(fat_tree2_radix_for_ports(ports));
      },
      fifoms_elements(), options);
}

SwitchFactory make_single_net_fifoms(NetworkFabric::Options options) {
  return make_net(
      "NetSingle-FIFOMS",
      [](int ports) { return Topology::single_switch(ports); }, fifoms_elements(),
      options);
}

}  // namespace fifoms::net
