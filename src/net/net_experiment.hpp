// Sweep factories for multistage fabrics: adapters that let run_sweep(),
// the benches and the CLI drive a NetworkFabric exactly like any
// single-switch model.  `num_ports` in the factory contract is the
// EXTERNAL port count; each maker derives the element radix from it
// (clos3: ports = k*k, fat_tree2: ports = k*k/2) and panics when the
// count does not fit the shape.
#pragma once

#include "net/network_fabric.hpp"
#include "sim/experiment.hpp"

namespace fifoms::net {

/// FIFOMS elements arranged as a 3-stage Clos; `num_ports` must be a
/// perfect square k*k with k*k <= kMaxPorts.
SwitchFactory make_clos3_fifoms(NetworkFabric::Options options = {});

/// FIFOMS elements arranged as a 2-level fat tree; `num_ports` must be
/// k*k/2 for an even k (8 -> k=4, 18 -> k=6, 32 -> k=8, ...).
SwitchFactory make_fat_tree2_fifoms(NetworkFabric::Options options = {});

/// One FIFOMS element wrapped in the fabric layer (the degenerate
/// topology) — the differential anchor against bare FIFOMS.
SwitchFactory make_single_net_fifoms(NetworkFabric::Options options = {});

/// General adapter: any topology-from-ports rule and element scheduler.
SwitchFactory make_net(std::string label,
                       std::function<Topology(int num_ports)> topology,
                       NetworkFabric::SchedulerFactory scheduler,
                       NetworkFabric::Options options = {});

/// The element radix k for `num_ports = k*k` external Clos ports; panics
/// unless the count is a perfect square.
int clos3_radix_for_ports(int num_ports);

/// The element radix k for `num_ports = k*k/2` external fat-tree ports;
/// panics unless such an even k exists.
int fat_tree2_radix_for_ports(int num_ports);

}  // namespace fifoms::net
