// NetworkFabric: a multistage switching network that IS a SwitchModel.
//
// The fabric composes square VoqSwitch elements along a Topology: external
// ports on the outside, synchronous 1-slot links on the inside.  Every
// slot it (1) applies the slot's network fault events, (2) computes the
// link-level backpressure masks from downstream buffer occupancy,
// (3) steps every element with a shared RNG in fixed index order, and
// (4) moves the slot's transfers: copies served on an internal wire are
// re-injected into the downstream element with a fresh per-hop arrival
// stamp and a per-hop destination set from Topology::hop_destinations —
// so a multicast cell replicates as late as possible along its tree.
// Copies served on an external wire leave the fabric as ordinary
// Delivery records carrying the flight's ORIGINAL arrival slot, which
// makes the simulator's delay pipeline measure true end-to-end latency
// with no changes.
//
// Because every element schedules only cells that arrived in earlier
// slots, stepping order cannot leak information between elements inside
// a slot: the fabric is deterministic in (topology, seed) and — through
// the degenerate single(n) topology — bit-identical to a bare VoqSwitch
// (same matchings, same metrics, same RNG draws), the golden anchor the
// differential tests pin.
//
// Backpressure: an internal wire is paused for a slot when its
// downstream input buffer held >= link_buffer_capacity data cells at the
// top of the slot.  Paused wires are merged into the element's
// ScheduleConstraints::failed_outputs, so the scheduler simply never
// grants them; with at most one arrival per input per slot the
// downstream buffer can never exceed its capacity (the bounded-buffer
// network invariant).  An empty pause mask takes the unconstrained
// scheduler path, keeping fault-free runs bit-identical to the
// pre-backpressure behaviour.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/auditor.hpp"
#include "fault/fault.hpp"
#include "net/net_fault.hpp"
#include "net/net_observer.hpp"
#include "net/topology.hpp"
#include "sim/voq_switch.hpp"
#include "stats/welford.hpp"

namespace fifoms::net {

class NetworkFabric final : public SwitchModel {
 public:
  /// Builds one scheduler instance per switch element.
  using SchedulerFactory = std::function<std::unique_ptr<VoqScheduler>()>;

  struct Options {
    /// Data cells buffered per internal (inter-stage) input before the
    /// upstream wire is backpressured; 0 = unbounded (no backpressure).
    std::size_t link_buffer_capacity = 32;
    /// Degradation policy of every element (docs/FAULTS.md).
    StrandedCellPolicy stranded_policy = StrandedCellPolicy::kHold;
    /// QoS classes of every element (1 = the paper's structure).
    int num_classes = 1;
    /// Attach a MatchingAuditor to every element so each hop is audited
    /// as a full single-switch run (FIFOMS_AUDIT builds only; a no-op
    /// when the checks are compiled out).
    bool audit_switches = false;
    /// Test-only mutant: silently discard every k-th copy crossing an
    /// internal link.  Exists to prove the network auditor's end-to-end
    /// conservation check has teeth; never set it in a real config.
    int mutant_drop_every = 0;
    /// Test-only mutant: route internal transfers through per-link relay
    /// queues and hold every k-th cell back until its successor on the
    /// same link overtakes it — a link that reorders.  Proves the
    /// per-flow FIFO network check.
    int mutant_reorder_every = 0;
    /// Test-only mutant: elements skip fault masking, so cells are
    /// forwarded across failed inter-stage links.  Proves the
    /// no-forwarding-on-a-failed-link network check.
    bool mutant_skip_fault_masking = false;
    /// Test-only mutant: never pause a wire, so a bounded inter-stage
    /// buffer can overflow.  Proves the bounded-buffer network check.
    bool mutant_skip_backpressure = false;
  };

  NetworkFabric(Topology topology, const SchedulerFactory& scheduler_factory);
  NetworkFabric(Topology topology, const SchedulerFactory& scheduler_factory,
                Options options);

  // ---- SwitchModel surface (external ports) -----------------------------
  std::string_view name() const override { return name_; }
  int num_inputs() const override { return topo_.num_external_inputs(); }
  int num_outputs() const override { return topo_.num_external_outputs(); }
  bool inject(const Packet& packet) override;
  std::uint64_t dropped_packets() const override { return dropped_; }
  void step(SlotTime now, Rng& rng, SlotResult& result) override;
  /// Per-port queue metric: data cells buffered at input `port % radix`
  /// of element `port / radix` (every internal buffer is visible).
  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override {
    return topo_.num_switches() * topo_.radix();
  }
  std::size_t total_buffered() const override;
  void clear() override;
  /// Single-switch fault plans do not apply to a fabric; attach a
  /// NetFaultPlan via set_net_fault_plan instead.  Panics unless null.
  void set_fault_state(const fault::FaultState* faults) override;

  // ---- Network surface --------------------------------------------------
  const Topology& topology() const { return topo_; }
  const Options& options() const { return options_; }
  const VoqSwitch& switch_at(int sw) const;
  /// Attach (or detach) a network fault plan.  The plan must outlive the
  /// fabric or the next set_net_fault_plan/clear call.
  void set_net_fault_plan(const NetFaultPlan* plan);
  void set_observer(NetObserver* observer) { observer_ = observer; }

  /// Copies accepted at external inputs / delivered at external outputs /
  /// lost to faults (stranded-purge or a dead internal line card).
  std::uint64_t copies_injected() const { return copies_injected_; }
  std::uint64_t copies_delivered() const { return copies_delivered_; }
  std::uint64_t copies_purged() const { return copies_purged_; }
  /// Outstanding external copies (accepted, not yet delivered or purged).
  std::uint64_t pending_copies() const { return pending_copies_; }
  /// Copies that crossed an internal link (0 on the single topology).
  std::uint64_t forwarded_cells() const { return forwarded_cells_; }
  /// Wires paused by backpressure, summed over slots.
  std::uint64_t pauses_applied() const { return pauses_applied_; }

  /// Per-stage hop latency (service delay at each element) and true
  /// end-to-end delay of delivered copies, over the whole run.
  const RunningStat& hop_delay(int stage) const;
  const RunningStat& end_to_end_delay() const { return end_to_end_delay_; }

  /// Structural ground truth for the conservation audit: walk every VOQ
  /// ring of every element plus the relay queues and count the external
  /// copies the queued cells are still responsible for.  Must equal
  /// pending_copies() at every end-of-slot.
  std::uint64_t queued_external_copies() const;

  /// Serialise the whole fabric: every element's queues and scheduler,
  /// every element auditor, relay queues, the in-flight table (sorted by
  /// packet id), counters, latency stats and the fault cursor.  Restore
  /// rebuilds the per-switch FaultStates by replaying the plan up to the
  /// saved cursor, so mid-storm checkpoints resume with exact level state.
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  struct Flight {  // one live external packet
    PortId ext_input = kNoPort;
    SlotTime arrival = 0;
    int priority = 0;
    PortSet dests;      ///< original external destination set (route key)
    PortSet remaining;  ///< externals not yet delivered or purged
  };
  struct RelayCell {  // mutant_reorder_every only
    Packet packet;
    SlotTime flight_arrival = 0;
    bool hold_back = false;  ///< wait for a successor to overtake first
  };

  /// Apply the fault events of slot `now` exactly once (first touch wins:
  /// inject() for arrivals of the slot, else step()).
  void advance_faults(SlotTime now);
  void compute_backpressure();
  /// Account `covered` external copies of `flight` as purged.
  void purge_copies(Flight& flight, PacketId id, const PortSet& covered,
                    SlotResult& result);
  void process_switch_results(SlotTime now, SlotResult& result);
  void release_relays(SlotTime now);
  void rebuild_fault_states();

  Topology topo_;
  Options options_;
  std::string name_;
  std::vector<std::unique_ptr<VoqSwitch>> switches_;
  std::vector<std::unique_ptr<MatchingAuditor>> element_auditors_;
  std::vector<PortSet> paused_;          // per switch, stable addresses
  std::vector<SlotResult> sub_results_;  // reused across slots
  std::vector<std::deque<RelayCell>> relay_;  // per internal link
  std::unordered_map<PacketId, Flight> flights_;
  const NetFaultPlan* fault_plan_ = nullptr;
  std::vector<fault::FaultState> fault_states_;  // per switch, iff plan
  SlotTime faults_advanced_to_ = -1;
  NetObserver* observer_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t copies_injected_ = 0;
  std::uint64_t copies_delivered_ = 0;
  std::uint64_t copies_purged_ = 0;
  std::uint64_t pending_copies_ = 0;
  std::uint64_t forwarded_cells_ = 0;
  std::uint64_t pauses_applied_ = 0;
  std::uint64_t transfer_seq_ = 0;  // mutant counters
  std::uint64_t relay_seq_ = 0;
  std::vector<RunningStat> hop_delay_;  // per stage
  RunningStat end_to_end_delay_;
};

}  // namespace fifoms::net
