// Topology: the static wiring and routing descriptor of a multistage
// switching network built from square VOQ switch elements.
//
// Three shapes are supported (docs/NETWORK.md):
//
//   * single_switch(n) — one n-port switch, zero internal links.  The
//     degenerate anchor: a NetworkFabric over this topology must be
//     bit-identical to a bare VoqSwitch run.
//   * clos3(k)     — the symmetric 3-stage Clos C(k, k, k): k ingress,
//     k middle and k egress switches of radix k, k*k external ports.
//     Every ingress reaches every middle switch and every middle switch
//     reaches every egress switch (full bipartite wiring per stage pair).
//   * fat_tree2(k) — a 2-level folded Clos (leaf/spine fat tree): k leaf
//     switches of radix k (k/2 external ports + k/2 uplinks) and k/2
//     spine switches of radix k, k*k/2 external ports.  Traffic local to
//     a leaf hairpins in one hop; remote traffic takes leaf-spine-leaf.
//
// Routing is deterministic and input-pinned: the middle/spine element a
// flow uses is a pure function of its external input (ext % k for the
// Clos, ext % (k/2) for the fat tree), never of the destination set or
// any RNG draw.  All copies of all cells of one flow therefore share one
// path per (flow, egress) pair, which is what makes per-flow FIFO order
// along a route a network invariant rather than a statistical accident.
//
// Multicast trees fall out of the same rule: hop_destinations() expands a
// cell's original external destination set into the per-hop fanout set at
// each traversed switch (ingress: one uplink; middle: the set of egress
// switches it must cover; egress: the local output ports), so a copy is
// replicated as late as possible — the classic multicast-tree economy.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/panic.hpp"
#include "common/port_set.hpp"
#include "common/types.hpp"

namespace fifoms::net {

enum class TopologyKind {
  kSingle,    ///< one switch, no internal links
  kClos3,     ///< 3-stage symmetric Clos C(k, k, k)
  kFatTree2,  ///< 2-level leaf/spine folded Clos
};

const char* topology_kind_name(TopologyKind kind);

/// One endpoint of an internal link: an input port of a specific switch.
struct LinkEnd {
  int sw = -1;
  PortId port = kNoPort;
};

/// Where one (switch, output) wire goes: off the fabric (external) or to
/// the input of a downstream switch (internal, with a dense link index).
struct OutPort {
  bool external = true;
  PortId ext = kNoPort;  ///< external output id when external
  LinkEnd to;            ///< downstream endpoint when internal
  int link = -1;         ///< dense internal-link index, -1 when external
};

class Topology {
 public:
  static Topology single_switch(int num_ports);
  static Topology clos3(int k);
  static Topology fat_tree2(int k);

  TopologyKind kind() const { return kind_; }
  /// Port count of every switch element (all elements are square).
  int radix() const { return radix_; }
  int num_switches() const { return static_cast<int>(out_ports_.size()); }
  int num_stages() const { return num_stages_; }
  /// Pipeline stage of a switch: 0 = touches external inputs.  For the
  /// fat tree, leaves are stage 0 and spines stage 1 (a leaf serves both
  /// the first and the last hop of a remote route).
  int stage_of(int sw) const;
  int num_external_inputs() const { return num_external_; }
  int num_external_outputs() const { return num_external_; }
  int num_internal_links() const { return static_cast<int>(links_.size()); }
  const std::string& name() const { return name_; }

  /// The (switch, input port) where external input `ext` enters.
  LinkEnd ingress_of(PortId ext) const;
  /// Wiring of one (switch, output port) wire.
  const OutPort& out_port(int sw, PortId output) const;
  /// The (switch, output port) driving internal link `link`.
  std::pair<int, PortId> link_source(int link) const;

  /// The per-hop VOQ fanout set for a cell of flow `ext_input` (original
  /// external destination set `dests`) arriving at `in_port` of switch
  /// `sw`: which output ports of `sw` the cell must be copied to.
  /// `in_port` disambiguates the role of a fat-tree leaf (fresh ingress
  /// cell vs a copy returning from a spine); the other shapes ignore it.
  PortSet hop_destinations(int sw, PortId in_port, PortId ext_input,
                           const PortSet& dests) const;

  /// The external destinations a copy queued at (sw, output) is still
  /// responsible for, given the cell's original destination set.  Over
  /// the outputs a cell is fanned to at one switch these sets partition
  /// the destinations the cell carried into that switch — the property
  /// the purge accounting and the structural network audit rely on.
  PortSet reachable_externals(int sw, PortId output,
                              const PortSet& dests) const;

 private:
  Topology() = default;

  TopologyKind kind_ = TopologyKind::kSingle;
  int radix_ = 0;
  int num_stages_ = 1;
  int num_external_ = 0;
  std::string name_;
  std::vector<LinkEnd> ingress_;                 // per external input
  std::vector<std::vector<OutPort>> out_ports_;  // [sw][output]
  std::vector<std::pair<int, PortId>> links_;    // dense internal links
};

}  // namespace fifoms::net
