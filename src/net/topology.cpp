#include "net/topology.hpp"

namespace fifoms::net {

namespace {

// Fat-tree half-radix: external ports (and uplinks) per leaf.
int half(int k) { return k / 2; }

}  // namespace

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSingle: return "single";
    case TopologyKind::kClos3: return "clos3";
    case TopologyKind::kFatTree2: return "fat-tree2";
  }
  FIFOMS_ASSERT(false, "unknown topology kind");
}

Topology Topology::single_switch(int num_ports) {
  FIFOMS_ASSERT(num_ports >= 1 && num_ports <= kMaxPorts,
                "single topology: port count out of range");
  Topology t;
  t.kind_ = TopologyKind::kSingle;
  t.radix_ = num_ports;
  t.num_stages_ = 1;
  t.num_external_ = num_ports;
  t.name_ = "single/" + std::to_string(num_ports);
  t.ingress_.resize(static_cast<std::size_t>(num_ports));
  t.out_ports_.resize(1);
  t.out_ports_[0].resize(static_cast<std::size_t>(num_ports));
  for (PortId p = 0; p < num_ports; ++p) {
    t.ingress_[static_cast<std::size_t>(p)] = LinkEnd{0, p};
    t.out_ports_[0][static_cast<std::size_t>(p)] =
        OutPort{.external = true, .ext = p, .to = {}, .link = -1};
  }
  return t;
}

Topology Topology::clos3(int k) {
  FIFOMS_ASSERT(k >= 1 && k * k <= kMaxPorts,
                "clos3 topology: k out of range (need k*k <= kMaxPorts)");
  Topology t;
  t.kind_ = TopologyKind::kClos3;
  t.radix_ = k;
  t.num_stages_ = 3;
  t.num_external_ = k * k;
  t.name_ = "clos3/" + std::to_string(k);
  const auto sk = static_cast<std::size_t>(k);
  t.ingress_.resize(sk * sk);
  t.out_ports_.resize(3 * sk);
  for (auto& row : t.out_ports_) row.resize(sk);
  // External input i enters ingress switch i/k at port i%k.
  for (PortId i = 0; i < k * k; ++i)
    t.ingress_[static_cast<std::size_t>(i)] = LinkEnd{i / k, i % k};
  // Ingress g, output j  ->  middle k+j, input g.
  for (int g = 0; g < k; ++g) {
    for (PortId j = 0; j < k; ++j) {
      const int link = static_cast<int>(t.links_.size());
      t.links_.emplace_back(g, j);
      t.out_ports_[static_cast<std::size_t>(g)][static_cast<std::size_t>(j)] =
          OutPort{.external = false,
                  .ext = kNoPort,
                  .to = LinkEnd{k + j, g},
                  .link = link};
    }
  }
  // Middle k+j, output e  ->  egress 2k+e, input j.
  for (int j = 0; j < k; ++j) {
    for (PortId e = 0; e < k; ++e) {
      const int link = static_cast<int>(t.links_.size());
      t.links_.emplace_back(k + j, e);
      t.out_ports_[static_cast<std::size_t>(k + j)]
                  [static_cast<std::size_t>(e)] =
          OutPort{.external = false,
                  .ext = kNoPort,
                  .to = LinkEnd{2 * k + e, j},
                  .link = link};
    }
  }
  // Egress 2k+e, output o  ->  external e*k + o.
  for (int e = 0; e < k; ++e) {
    for (PortId o = 0; o < k; ++o) {
      t.out_ports_[static_cast<std::size_t>(2 * k + e)]
                  [static_cast<std::size_t>(o)] =
          OutPort{.external = true, .ext = e * k + o, .to = {}, .link = -1};
    }
  }
  return t;
}

Topology Topology::fat_tree2(int k) {
  FIFOMS_ASSERT(k >= 2 && k % 2 == 0,
                "fat_tree2 topology: k must be even and >= 2");
  FIFOMS_ASSERT(k * half(k) <= kMaxPorts,
                "fat_tree2 topology: k out of range");
  Topology t;
  const int h = half(k);
  t.kind_ = TopologyKind::kFatTree2;
  t.radix_ = k;
  t.num_stages_ = 2;
  t.num_external_ = k * h;
  t.name_ = "fat-tree2/" + std::to_string(k);
  const auto sk = static_cast<std::size_t>(k);
  t.ingress_.resize(static_cast<std::size_t>(k * h));
  t.out_ports_.resize(sk + static_cast<std::size_t>(h));
  for (auto& row : t.out_ports_) row.resize(sk);
  // External input i enters leaf i/h at port i%h (ports 0..h-1 are the
  // leaf's external side; ports h..k-1 are its uplinks).
  for (PortId i = 0; i < k * h; ++i)
    t.ingress_[static_cast<std::size_t>(i)] = LinkEnd{i / h, i % h};
  for (int leaf = 0; leaf < k; ++leaf) {
    // Leaf outputs 0..h-1 are external; h+s is the uplink to spine s.
    for (PortId j = 0; j < h; ++j) {
      t.out_ports_[static_cast<std::size_t>(leaf)][static_cast<std::size_t>(
          j)] = OutPort{
          .external = true, .ext = leaf * h + j, .to = {}, .link = -1};
    }
    for (int s = 0; s < h; ++s) {
      const int link = static_cast<int>(t.links_.size());
      t.links_.emplace_back(leaf, static_cast<PortId>(h + s));
      t.out_ports_[static_cast<std::size_t>(leaf)]
                  [static_cast<std::size_t>(h + s)] =
          OutPort{.external = false,
                  .ext = kNoPort,
                  .to = LinkEnd{k + s, static_cast<PortId>(leaf)},
                  .link = link};
    }
  }
  // Spine s, output L  ->  leaf L, input h+s (the folded return wire).
  for (int s = 0; s < h; ++s) {
    for (PortId leaf = 0; leaf < k; ++leaf) {
      const int link = static_cast<int>(t.links_.size());
      t.links_.emplace_back(k + s, leaf);
      t.out_ports_[static_cast<std::size_t>(k + s)]
                  [static_cast<std::size_t>(leaf)] =
          OutPort{.external = false,
                  .ext = kNoPort,
                  .to = LinkEnd{leaf, static_cast<PortId>(h + s)},
                  .link = link};
    }
  }
  return t;
}

int Topology::stage_of(int sw) const {
  FIFOMS_ASSERT(sw >= 0 && sw < num_switches(), "switch id out of range");
  switch (kind_) {
    case TopologyKind::kSingle: return 0;
    case TopologyKind::kClos3: return sw / radix_;
    case TopologyKind::kFatTree2: return sw < radix_ ? 0 : 1;
  }
  FIFOMS_ASSERT(false, "unknown topology kind");
}

LinkEnd Topology::ingress_of(PortId ext) const {
  FIFOMS_ASSERT(ext >= 0 && ext < num_external_,
                "external input out of range");
  return ingress_[static_cast<std::size_t>(ext)];
}

const OutPort& Topology::out_port(int sw, PortId output) const {
  FIFOMS_ASSERT(sw >= 0 && sw < num_switches(), "switch id out of range");
  FIFOMS_ASSERT(output >= 0 && output < radix_, "output port out of range");
  return out_ports_[static_cast<std::size_t>(sw)]
                   [static_cast<std::size_t>(output)];
}

std::pair<int, PortId> Topology::link_source(int link) const {
  FIFOMS_ASSERT(link >= 0 && link < num_internal_links(),
                "link index out of range");
  return links_[static_cast<std::size_t>(link)];
}

PortSet Topology::hop_destinations(int sw, PortId in_port, PortId ext_input,
                                   const PortSet& dests) const {
  FIFOMS_ASSERT(sw >= 0 && sw < num_switches(), "switch id out of range");
  FIFOMS_ASSERT(in_port >= 0 && in_port < radix_, "input port out of range");
  FIFOMS_ASSERT(ext_input >= 0 && ext_input < num_external_,
                "external input out of range");
  FIFOMS_ASSERT(!dests.empty(), "empty destination set");
  PortSet out;
  switch (kind_) {
    case TopologyKind::kSingle:
      return dests;
    case TopologyKind::kClos3: {
      const int k = radix_;
      const int stage = sw / k;
      if (stage == 0) {
        // Ingress: one copy to the flow's pinned middle switch.
        return PortSet::single(ext_input % k);
      }
      if (stage == 1) {
        // Middle: one copy per egress switch that owns a destination.
        for (PortId d : dests) out.insert(d / k);
        return out;
      }
      // Egress e: the local output ports of the destinations it owns.
      const int e = sw - 2 * k;
      for (PortId d : dests)
        if (d / k == e) out.insert(d % k);
      FIFOMS_ASSERT(!out.empty(), "cell routed to an egress it never needed");
      return out;
    }
    case TopologyKind::kFatTree2: {
      const int k = radix_;
      const int h = half(k);
      if (sw >= k) {
        // Spine: one copy per remote leaf that owns a destination (spine
        // output port L is the wire down to leaf L).  Destinations local
        // to the SOURCE leaf were already served when the cell hairpinned
        // there — echoing them back down would deliver them twice.
        const int source_leaf = ext_input / h;
        for (PortId d : dests)
          if (d / h != source_leaf) out.insert(d / h);
        FIFOMS_ASSERT(!out.empty(),
                      "cell uplinked to a spine it never needed");
        return out;
      }
      // Leaf.  Copies returning from a spine (in_port >= h) only fan to
      // the local external side; fresh ingress cells additionally take
      // the flow's pinned uplink when any destination is remote.
      const int leaf = sw;
      bool remote = false;
      for (PortId d : dests) {
        if (d / h == leaf) {
          out.insert(d % h);
        } else {
          remote = true;
        }
      }
      if (in_port < h && remote) out.insert(h + ext_input % h);
      FIFOMS_ASSERT(!out.empty(), "cell routed to a leaf it never needed");
      return out;
    }
  }
  FIFOMS_ASSERT(false, "unknown topology kind");
}

PortSet Topology::reachable_externals(int sw, PortId output,
                                      const PortSet& dests) const {
  FIFOMS_ASSERT(sw >= 0 && sw < num_switches(), "switch id out of range");
  FIFOMS_ASSERT(output >= 0 && output < radix_, "output port out of range");
  PortSet out;
  switch (kind_) {
    case TopologyKind::kSingle:
      FIFOMS_ASSERT(dests.contains(output),
                    "queued copy outside its destination set");
      return PortSet::single(output);
    case TopologyKind::kClos3: {
      const int k = radix_;
      const int stage = sw / k;
      // Ingress uplink: still responsible for the whole set.
      if (stage == 0) return dests;
      if (stage == 1) {
        // Middle output e covers the destinations egress e owns.
        for (PortId d : dests)
          if (d / k == output) out.insert(d);
        return out;
      }
      const int e = sw - 2 * k;
      const PortId ext = e * k + output;
      FIFOMS_ASSERT(dests.contains(ext),
                    "queued copy outside its destination set");
      return PortSet::single(ext);
    }
    case TopologyKind::kFatTree2: {
      const int k = radix_;
      const int h = half(k);
      if (sw >= k) {
        // Spine output L covers the destinations local to leaf L.
        for (PortId d : dests)
          if (d / h == output) out.insert(d);
        return out;
      }
      const int leaf = sw;
      if (output < h) {
        const PortId ext = leaf * h + output;
        FIFOMS_ASSERT(dests.contains(ext),
                      "queued copy outside its destination set");
        return PortSet::single(ext);
      }
      // Uplink: responsible for every destination not local to this leaf.
      for (PortId d : dests)
        if (d / h != leaf) out.insert(d);
      return out;
    }
  }
  FIFOMS_ASSERT(false, "unknown topology kind");
}

}  // namespace fifoms::net
