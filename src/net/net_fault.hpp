// NetFaultPlan: deterministic fault schedules for a multistage fabric.
//
// A network fault plan is a per-switch bundle of ordinary fault::FaultPlan
// schedules, addressed by switch index in a Topology.  Inter-stage link
// loss is expressed as kOutputDown at the upstream switch (the wire's
// driver): the upstream element then masks, holds or purges exactly as a
// single switch would for a dead external output, and the fabric refuses
// to forward across the link.  Line-card loss at an ingress is kInputDown
// at the owning first-stage switch; a dead INTERNAL input additionally
// loses copies that arrive over the wire while it is down (the fabric
// accounts them as purged — a line card that is off the bus drops what
// lands on it).
//
// Like fault::FaultPlan, every builder derives all randomness from a seed
// through the house splitmix64 streams, so a net fault storm replays
// bit-identically under any sweep thread count.  Validation throws
// fault::FaultError (never panics): fault handling degrades, it does not
// abort.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "net/topology.hpp"

namespace fifoms::net {

/// One fault event aimed at one switch element of the fabric.
struct NetFaultEvent {
  int sw = -1;
  fault::FaultEvent event;
};

class NetFaultPlan {
 public:
  /// The empty plan (no faults ever).
  NetFaultPlan() = default;

  /// Groups `events` by switch and validates each group as a per-switch
  /// fault::FaultPlan over the topology's radix (port ranges, down/up
  /// pairing).  Throws fault::FaultError on a bad switch index, on
  /// kGrantCorrupt (a corrupted grant would bypass backpressure and void
  /// the bounded-buffer guarantee) or any per-switch validation failure.
  NetFaultPlan(std::vector<NetFaultEvent> events, const Topology& topology,
               std::uint64_t seed = 0);

  bool empty() const { return total_events_ == 0; }
  int num_switches() const { return static_cast<int>(plans_.size()); }
  std::uint64_t seed() const { return seed_; }
  std::size_t total_events() const { return total_events_; }

  /// The validated schedule of one switch element (empty plan if the
  /// switch is never faulted).  Throws fault::FaultError out of range.
  const fault::FaultPlan& plan_for(int sw) const;

  // ---- Scenario builders (docs/NETWORK.md) ------------------------------

  /// One internal link at a time goes down for `down_slots`, cycling
  /// through every link each `period` slots until `horizon`.  The
  /// network analogue of FaultPlan::rolling_port_flaps.
  static NetFaultPlan inter_stage_link_flaps(const Topology& topology,
                                             SlotTime first_down,
                                             SlotTime period,
                                             SlotTime down_slots,
                                             SlotTime horizon);

  /// `cards` external ingress line cards (chosen by seed) fail together
  /// at `down_at` and recover together at `up_at`.
  static NetFaultPlan ingress_line_card_loss(const Topology& topology,
                                             std::uint64_t seed,
                                             SlotTime down_at, SlotTime up_at,
                                             int cards);

  /// Adversarial mix until `horizon`: seeded inter-stage link flaps plus
  /// a correlated ingress line-card outage in the middle of the storm.
  static NetFaultPlan net_fault_storm(const Topology& topology,
                                      std::uint64_t seed, SlotTime horizon);

 private:
  std::vector<fault::FaultPlan> plans_;  // one per switch element
  std::uint64_t seed_ = 0;
  std::size_t total_events_ = 0;
};

}  // namespace fifoms::net
