#include "net/net_fault.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace fifoms::net {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw fault::FaultError("net fault plan: " + message);
}

void require(bool condition, const char* message) {
  if (!condition) fail(message);
}

/// `cards` distinct external inputs drawn by a seeded partial
/// Fisher-Yates, mapped to kInputDown/kInputUp at their ingress switch.
void append_card_loss(std::vector<NetFaultEvent>& events,
                      const Topology& topology, std::uint64_t seed,
                      SlotTime down_at, SlotTime up_at, int cards) {
  const int externals = topology.num_external_inputs();
  require(cards > 0 && cards <= externals, "card count out of range");
  require(down_at < up_at, "line cards must recover after they fail");
  std::vector<PortId> ext(static_cast<std::size_t>(externals));
  std::iota(ext.begin(), ext.end(), PortId{0});
  // Scenario builders take the seed itself (mirroring src/fault's API),
  // so the stream IS traceable from the argument; the Rng&-threading
  // rule is for decision code inside a run, not plan construction.
  // fifoms-analyze: allow(determinism-dataflow)
  Rng pick_rng(splitmix64(seed, 0));
  for (int k = 0; k < cards; ++k) {
    const auto j =
        static_cast<std::size_t>(k) +
        // fifoms-analyze: allow(determinism-dataflow)
        pick_rng.next_below(static_cast<std::uint64_t>(externals - k));
    std::swap(ext[static_cast<std::size_t>(k)], ext[j]);
    const LinkEnd in = topology.ingress_of(ext[static_cast<std::size_t>(k)]);
    events.push_back({in.sw, {down_at, fault::FaultKind::kInputDown, in.port,
                              kNoPort}});
    events.push_back(
        {in.sw, {up_at, fault::FaultKind::kInputUp, in.port, kNoPort}});
  }
}

}  // namespace

NetFaultPlan::NetFaultPlan(std::vector<NetFaultEvent> events,
                           const Topology& topology, std::uint64_t seed)
    : seed_(seed) {
  const int switches = topology.num_switches();
  std::vector<std::vector<fault::FaultEvent>> per_switch(
      static_cast<std::size_t>(switches));
  for (const NetFaultEvent& ev : events) {
    if (ev.sw < 0 || ev.sw >= switches)
      fail("switch index " + std::to_string(ev.sw) + " out of range");
    // A corrupted grant wire ignores ScheduleConstraints, so it could
    // push a cell into a full inter-stage buffer and void the fabric's
    // bounded-buffer guarantee.  Grant corruption stays a single-switch
    // scenario.
    if (ev.event.kind == fault::FaultKind::kGrantCorrupt)
      fail("grant corruption is not supported inside a fabric");
    per_switch[static_cast<std::size_t>(ev.sw)].push_back(ev.event);
  }
  plans_.reserve(static_cast<std::size_t>(switches));
  for (int sw = 0; sw < switches; ++sw) {
    auto& group = per_switch[static_cast<std::size_t>(sw)];
    total_events_ += group.size();
    // Per-switch validation (port ranges, down/up pairing) and stable
    // slot ordering come from the single-switch plan's constructor.
    plans_.emplace_back(std::move(group), topology.radix(),
                        splitmix64(seed, static_cast<std::uint64_t>(sw)));
  }
}

const fault::FaultPlan& NetFaultPlan::plan_for(int sw) const {
  if (sw < 0 || sw >= num_switches())
    fail("switch index " + std::to_string(sw) + " out of range");
  return plans_[static_cast<std::size_t>(sw)];
}

NetFaultPlan NetFaultPlan::inter_stage_link_flaps(const Topology& topology,
                                                  SlotTime first_down,
                                                  SlotTime period,
                                                  SlotTime down_slots,
                                                  SlotTime horizon) {
  const int links = topology.num_internal_links();
  require(links > 0, "topology has no internal links to flap");
  require(first_down >= 0 && period > 0 && down_slots > 0,
          "flap timing must be positive");
  require(down_slots < period,
          "a link must recover before its next scheduled flap");
  std::vector<NetFaultEvent> events;
  int cycle = 0;
  for (SlotTime at = first_down; at + down_slots <= horizon;
       at += period, ++cycle) {
    const auto [sw, port] = topology.link_source(cycle % links);
    events.push_back({sw, {at, fault::FaultKind::kOutputDown, port, kNoPort}});
    events.push_back(
        {sw, {at + down_slots, fault::FaultKind::kOutputUp, port, kNoPort}});
  }
  return NetFaultPlan(std::move(events), topology, 0);
}

NetFaultPlan NetFaultPlan::ingress_line_card_loss(const Topology& topology,
                                                  std::uint64_t seed,
                                                  SlotTime down_at,
                                                  SlotTime up_at, int cards) {
  std::vector<NetFaultEvent> events;
  append_card_loss(events, topology, seed, down_at, up_at, cards);
  return NetFaultPlan(std::move(events), topology, seed);
}

NetFaultPlan NetFaultPlan::net_fault_storm(const Topology& topology,
                                           std::uint64_t seed,
                                           SlotTime horizon) {
  require(horizon >= 64, "net fault storm needs at least 64 slots");
  std::vector<NetFaultEvent> events;
  // Seed-parameter builder: the stream is traceable from the argument
  // (see append_card_loss above).
  // fifoms-analyze: allow(determinism-dataflow)
  Rng storm_rng(splitmix64(seed, 2));
  const int links = topology.num_internal_links();
  if (links > 0) {
    // Seeded link flaps with per-link busy tracking so no link is downed
    // twice before it recovered (a double-down would fail validation).
    std::vector<SlotTime> busy(static_cast<std::size_t>(links), 0);
    const int flaps = std::min(links, 8);
    for (int f = 0; f < flaps; ++f) {
      const auto link = static_cast<int>(
          // fifoms-analyze: allow(determinism-dataflow)
          storm_rng.next_below(static_cast<std::uint64_t>(links)));
      const auto start = static_cast<SlotTime>(
          // fifoms-analyze: allow(determinism-dataflow)
          1 + storm_rng.next_below(static_cast<std::uint64_t>(horizon / 2)));
      const auto duration = static_cast<SlotTime>(
          // fifoms-analyze: allow(determinism-dataflow)
          1 + storm_rng.next_below(static_cast<std::uint64_t>(horizon / 4)));
      if (busy[static_cast<std::size_t>(link)] >= start) continue;
      const auto [sw, port] = topology.link_source(link);
      events.push_back(
          {sw, {start, fault::FaultKind::kOutputDown, port, kNoPort}});
      events.push_back({sw, {start + duration, fault::FaultKind::kOutputUp,
                             port, kNoPort}});
      busy[static_cast<std::size_t>(link)] = start + duration;
    }
  }
  // A correlated ingress line-card outage in the middle of the storm.
  const int cards = std::max(1, topology.num_external_inputs() / 8);
  append_card_loss(events, topology, splitmix64(seed, 3), horizon / 2,
                   horizon / 2 + horizon / 8, cards);
  return NetFaultPlan(std::move(events), topology, seed);
}

}  // namespace fifoms::net
