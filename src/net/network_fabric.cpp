#include "net/network_fabric.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/snapshot.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms::net {

NetworkFabric::NetworkFabric(Topology topology,
                             const SchedulerFactory& scheduler_factory)
    : NetworkFabric(std::move(topology), scheduler_factory, Options{}) {}

NetworkFabric::NetworkFabric(Topology topology,
                             const SchedulerFactory& scheduler_factory,
                             Options options)
    : topo_(std::move(topology)), options_(options) {
  FIFOMS_ASSERT(scheduler_factory != nullptr,
                "NetworkFabric requires a scheduler factory");
  FIFOMS_ASSERT(options_.num_classes >= 1, "num_classes must be positive");
  const int switches = topo_.num_switches();
  switches_.reserve(static_cast<std::size_t>(switches));
  for (int sw = 0; sw < switches; ++sw) {
    auto scheduler = scheduler_factory();
    FIFOMS_ASSERT(scheduler != nullptr, "scheduler factory returned null");
    switches_.push_back(std::make_unique<VoqSwitch>(
        topo_.radix(), std::move(scheduler),
        VoqSwitch::Options{
            .input_capacity = 0,  // bounded-ness comes from backpressure
            .num_classes = options_.num_classes,
            .stranded_policy = options_.stranded_policy,
            .mutant_skip_fault_masking = options_.mutant_skip_fault_masking,
        }));
  }
  name_ = "net-";
  name_ += switches_[0]->name();
  name_ += "/";
  name_ += topo_.name();
  paused_.resize(static_cast<std::size_t>(switches));
  sub_results_.resize(static_cast<std::size_t>(switches));
  relay_.resize(static_cast<std::size_t>(topo_.num_internal_links()));
  hop_delay_.resize(static_cast<std::size_t>(topo_.num_stages()));
  // The pause masks live at stable addresses for the fabric's lifetime
  // (paused_ is never resized again), so each element can hold a pointer.
  for (int sw = 0; sw < switches; ++sw)
    switches_[static_cast<std::size_t>(sw)]->set_backpressure(
        &paused_[static_cast<std::size_t>(sw)]);
  if (options_.audit_switches && MatchingAuditor::enabled()) {
    element_auditors_.reserve(static_cast<std::size_t>(switches));
    for (int sw = 0; sw < switches; ++sw)
      element_auditors_.push_back(std::make_unique<MatchingAuditor>());
  }
}

bool NetworkFabric::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 &&
                    packet.input < topo_.num_external_inputs(),
                "external input out of range");
  FIFOMS_ASSERT(!packet.destinations.empty(),
                "packet with no destinations");
  FIFOMS_ASSERT(packet.destinations.is_subset_of(
                    PortSet::all(topo_.num_external_outputs())),
                "external destination out of range");
  // Faults scheduled for this slot must suppress this slot's arrivals,
  // and arrivals precede step(): first touch of the slot applies them.
  advance_faults(packet.arrival);
  const LinkEnd in = topo_.ingress_of(packet.input);
  if (!fault_states_.empty() &&
      fault_states_[static_cast<std::size_t>(in.sw)].failed_inputs().contains(
          in.port)) {
    ++dropped_;  // dead ingress line card: the whole packet is lost
    return false;
  }
  const Packet hop{
      .id = packet.id,
      .input = in.port,
      .arrival = packet.arrival,
      .destinations = topo_.hop_destinations(in.sw, in.port, packet.input,
                                             packet.destinations),
      .priority = packet.priority,
  };
  const bool accepted =
      switches_[static_cast<std::size_t>(in.sw)]->inject(hop);
  FIFOMS_ASSERT(accepted, "ingress element refused an unbounded inject");
  const auto [it, fresh] = flights_.emplace(
      packet.id, Flight{
                     .ext_input = packet.input,
                     .arrival = packet.arrival,
                     .priority = packet.priority,
                     .dests = packet.destinations,
                     .remaining = packet.destinations,
                 });
  FIFOMS_ASSERT(fresh, "packet id reused while still in flight");
  const auto fanout = static_cast<std::uint64_t>(packet.fanout());
  copies_injected_ += fanout;
  pending_copies_ += fanout;
  if (!element_auditors_.empty())
    element_auditors_[static_cast<std::size_t>(in.sw)]->on_inject(
        *switches_[static_cast<std::size_t>(in.sw)], hop);
  if (observer_ != nullptr) observer_->on_external_inject(*this, packet);
  return true;
}

void NetworkFabric::advance_faults(SlotTime now) {
  if (fault_states_.empty() || now <= faults_advanced_to_) return;
  faults_advanced_to_ = now;
  for (int sw = 0; sw < topo_.num_switches(); ++sw) {
    const auto applied =
        fault_states_[static_cast<std::size_t>(sw)].advance(now);
    for (const fault::FaultEvent& event : applied) {
      if (observer_ != nullptr)
        observer_->on_net_fault_event(now, sw, event);
      if (!element_auditors_.empty())
        element_auditors_[static_cast<std::size_t>(sw)]->on_fault_event(
            now, *switches_[static_cast<std::size_t>(sw)], event);
    }
  }
}

void NetworkFabric::compute_backpressure() {
  for (PortSet& mask : paused_) mask.clear();
  if (options_.link_buffer_capacity == 0 || options_.mutant_skip_backpressure)
    return;
  // A wire pauses for the slot when its downstream input buffer is at
  // capacity now; one arrival per input per slot bounds the buffer at
  // exactly the capacity.
  for (int link = 0; link < topo_.num_internal_links(); ++link) {
    const auto [sw, output] = topo_.link_source(link);
    const OutPort& out = topo_.out_port(sw, output);
    const std::size_t queued =
        switches_[static_cast<std::size_t>(out.to.sw)]->occupancy(
            out.to.port);
    if (queued >= options_.link_buffer_capacity) {
      paused_[static_cast<std::size_t>(sw)].insert(output);
      ++pauses_applied_;
    }
  }
}

void NetworkFabric::release_relays(SlotTime now) {
  for (int link = 0; link < topo_.num_internal_links(); ++link) {
    auto& queue = relay_[static_cast<std::size_t>(link)];
    if (queue.empty()) continue;
    const auto [sw, output] = topo_.link_source(link);
    const LinkEnd to = topo_.out_port(sw, output).to;
    // A held-back cell waits until a successor exists, then lets it
    // overtake: the successor releases first, the held cell follows in
    // a later slot — a genuinely reordering link.
    std::size_t pick = 0;
    if (queue.front().hold_back) {
      if (queue.size() < 2) continue;  // no successor to overtake yet
      pick = 1;
      queue.front().hold_back = false;  // overtaken once; release next
    }
    RelayCell cell = queue[pick];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
    cell.packet.arrival = now;
    if (observer_ != nullptr) {
      observer_->on_hop(*this, HopEvent{
                                   .slot = now,
                                   .from_sw = sw,
                                   .output = output,
                                   .to_sw = to.sw,
                                   .input = to.port,
                                   .packet = cell.packet,
                                   .flight_arrival = cell.flight_arrival,
                               });
    }
    const bool accepted =
        switches_[static_cast<std::size_t>(to.sw)]->inject(cell.packet);
    FIFOMS_ASSERT(accepted, "relay target refused an unbounded inject");
    if (!element_auditors_.empty())
      element_auditors_[static_cast<std::size_t>(to.sw)]->on_inject(
          *switches_[static_cast<std::size_t>(to.sw)], cell.packet);
  }
}

void NetworkFabric::purge_copies(Flight& flight, PacketId id,
                                 const PortSet& covered, SlotResult& result) {
  Packet probe;
  probe.id = id;
  const std::uint64_t tag = probe.payload_tag();
  for (PortId ext : covered) {
    FIFOMS_ASSERT(flight.remaining.contains(ext),
                  "purged copy already delivered or purged");
    flight.remaining.erase(ext);
    result.purged.push_back(Delivery{
        .packet = id,
        .input = flight.ext_input,
        .output = ext,
        .arrival = flight.arrival,
        .payload_tag = tag,
    });
    ++copies_purged_;
    --pending_copies_;
  }
}

void NetworkFabric::process_switch_results(SlotTime now, SlotResult& result) {
  for (int sw = 0; sw < topo_.num_switches(); ++sw) {
    SlotResult& sub = sub_results_[static_cast<std::size_t>(sw)];
    const int stage = topo_.stage_of(sw);
    // Purges first (the element purges at the top of its step).  Each
    // purged per-hop copy retires every external destination it was
    // still responsible for.
    for (const Delivery& d : sub.purged) {
      const auto it = flights_.find(d.packet);
      FIFOMS_ASSERT(it != flights_.end(), "purged copy of unknown packet");
      Flight& flight = it->second;
      purge_copies(flight, d.packet,
                   topo_.reachable_externals(sw, d.output, flight.dests),
                   result);
      if (flight.remaining.empty()) flights_.erase(it);
    }
    for (const Delivery& d : sub.deliveries) {
      const auto it = flights_.find(d.packet);
      FIFOMS_ASSERT(it != flights_.end(), "delivered copy of unknown packet");
      Flight& flight = it->second;
      // d.arrival is the per-hop stamp: service delay at this element.
      hop_delay_[static_cast<std::size_t>(stage)].add(
          static_cast<double>(now - d.arrival));
      const OutPort& out = topo_.out_port(sw, d.output);
      if (out.external) {
        FIFOMS_ASSERT(flight.remaining.contains(out.ext),
                      "external copy delivered twice");
        flight.remaining.erase(out.ext);
        end_to_end_delay_.add(static_cast<double>(now - flight.arrival));
        result.deliveries.push_back(Delivery{
            .packet = d.packet,
            .input = flight.ext_input,
            .output = out.ext,
            .arrival = flight.arrival,  // end-to-end delay for metrics
            .payload_tag = d.payload_tag,
        });
        ++copies_delivered_;
        --pending_copies_;
        if (flight.remaining.empty()) flights_.erase(it);
        continue;
      }
      // Internal transfer across one link.
      ++transfer_seq_;
      if (options_.mutant_drop_every > 0 &&
          transfer_seq_ %
                  static_cast<std::uint64_t>(options_.mutant_drop_every) ==
              0)
        continue;  // mutant: the copy silently evaporates mid-stage
      if (!fault_states_.empty() &&
          fault_states_[static_cast<std::size_t>(out.to.sw)]
              .failed_inputs()
              .contains(out.to.port)) {
        // The wire works but the downstream line card is off the bus:
        // everything this copy still covered is lost (and accounted).
        purge_copies(flight, d.packet,
                     topo_.reachable_externals(sw, d.output, flight.dests),
                     result);
        if (flight.remaining.empty()) flights_.erase(it);
        continue;
      }
      const Packet hop{
          .id = d.packet,
          .input = out.to.port,
          .arrival = now,  // per-hop stamp; the link costs one slot
          .destinations = topo_.hop_destinations(
              out.to.sw, out.to.port, flight.ext_input, flight.dests),
          .priority = flight.priority,
      };
      ++forwarded_cells_;
      if (options_.mutant_reorder_every > 0) {
        // Mutant: park the cell in the link's relay queue, marking
        // every k-th cell to be overtaken by its successor.
        auto& queue = relay_[static_cast<std::size_t>(out.link)];
        ++relay_seq_;
        const bool held =
            relay_seq_ % static_cast<std::uint64_t>(
                             options_.mutant_reorder_every) ==
            0;
        queue.push_back(RelayCell{hop, flight.arrival, held});
        continue;
      }
      if (observer_ != nullptr) {
        observer_->on_hop(*this, HopEvent{
                                     .slot = now,
                                     .from_sw = sw,
                                     .output = d.output,
                                     .to_sw = out.to.sw,
                                     .input = out.to.port,
                                     .packet = hop,
                                     .flight_arrival = flight.arrival,
                                 });
      }
      const bool accepted =
          switches_[static_cast<std::size_t>(out.to.sw)]->inject(hop);
      FIFOMS_ASSERT(accepted, "downstream element refused an inject");
      if (!element_auditors_.empty())
        element_auditors_[static_cast<std::size_t>(out.to.sw)]->on_inject(
            *switches_[static_cast<std::size_t>(out.to.sw)], hop);
    }
    result.rounds = std::max(result.rounds, sub.rounds);
    result.matched_pairs += sub.matched_pairs;
  }
}

void NetworkFabric::step(SlotTime now, Rng& rng, SlotResult& result) {
  advance_faults(now);
  if (options_.mutant_reorder_every > 0) release_relays(now);
  compute_backpressure();
  // Elements only schedule cells that arrived in earlier slots, so the
  // fixed stepping order cannot leak state between elements in-slot; the
  // shared RNG makes the whole fabric one deterministic stream.
  for (int sw = 0; sw < topo_.num_switches(); ++sw) {
    SlotResult& sub = sub_results_[static_cast<std::size_t>(sw)];
    sub.clear();
    switches_[static_cast<std::size_t>(sw)]->step(now, rng, sub);
  }
  process_switch_results(now, result);
  if (!element_auditors_.empty()) {
    for (int sw = 0; sw < topo_.num_switches(); ++sw)
      element_auditors_[static_cast<std::size_t>(sw)]->on_slot(
          now, *switches_[static_cast<std::size_t>(sw)],
          sub_results_[static_cast<std::size_t>(sw)]);
  }
  if (observer_ != nullptr) observer_->on_net_slot(now, *this, result);
}

std::size_t NetworkFabric::occupancy(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < occupancy_ports(),
                "occupancy port out of range");
  const int sw = port / topo_.radix();
  return switches_[static_cast<std::size_t>(sw)]->occupancy(
      port % topo_.radix());
}

std::size_t NetworkFabric::total_buffered() const {
  std::size_t total = 0;
  for (const auto& sw : switches_) total += sw->total_buffered();
  for (const auto& queue : relay_) total += queue.size();
  return total;
}

void NetworkFabric::clear() {
  for (auto& sw : switches_) sw->clear();
  for (auto& queue : relay_) queue.clear();
  for (PortSet& mask : paused_) mask.clear();
  flights_.clear();
  rebuild_fault_states();
  for (auto& auditor : element_auditors_) auditor->reset();
  dropped_ = 0;
  copies_injected_ = copies_delivered_ = copies_purged_ = 0;
  pending_copies_ = forwarded_cells_ = pauses_applied_ = 0;
  transfer_seq_ = relay_seq_ = 0;
  for (RunningStat& stat : hop_delay_) stat.reset();
  end_to_end_delay_.reset();
}

void NetworkFabric::set_fault_state(const fault::FaultState* faults) {
  FIFOMS_ASSERT(faults == nullptr,
                "single-switch fault plans do not apply to a fabric; use "
                "set_net_fault_plan");
}

void NetworkFabric::set_net_fault_plan(const NetFaultPlan* plan) {
  fault_plan_ = (plan != nullptr && !plan->empty()) ? plan : nullptr;
  if (fault_plan_ != nullptr)
    FIFOMS_ASSERT(fault_plan_->num_switches() == topo_.num_switches(),
                  "fault plan built for a different topology");
  rebuild_fault_states();
}

void NetworkFabric::rebuild_fault_states() {
  fault_states_.clear();
  faults_advanced_to_ = -1;
  if (fault_plan_ == nullptr) {
    for (auto& sw : switches_) sw->set_fault_state(nullptr);
    return;
  }
  fault_states_.reserve(static_cast<std::size_t>(topo_.num_switches()));
  for (int sw = 0; sw < topo_.num_switches(); ++sw)
    fault_states_.emplace_back(fault_plan_->plan_for(sw));
  for (int sw = 0; sw < topo_.num_switches(); ++sw)
    switches_[static_cast<std::size_t>(sw)]->set_fault_state(
        &fault_states_[static_cast<std::size_t>(sw)]);
}

const VoqSwitch& NetworkFabric::switch_at(int sw) const {
  FIFOMS_ASSERT(sw >= 0 && sw < topo_.num_switches(),
                "switch id out of range");
  return *switches_[static_cast<std::size_t>(sw)];
}

const RunningStat& NetworkFabric::hop_delay(int stage) const {
  FIFOMS_ASSERT(stage >= 0 && stage < topo_.num_stages(),
                "stage out of range");
  return hop_delay_[static_cast<std::size_t>(stage)];
}

void NetworkFabric::save_state(snapshot::Writer& out) const {
  // Element state first: queues, scheduler cursors, drop counters.
  for (const auto& sw : switches_) sw->save_state(out);
  // Element auditors (shadow ledgers).  Presence is config-derived, but
  // the byte lets load_state reject a checkpoint from a differently
  // configured build with a clean error instead of a desynced stream.
  out.boolean(!element_auditors_.empty());
  for (const auto& auditor : element_auditors_) auditor->save_state(out);
  // Relay queues, one per internal link (count fixed by the topology).
  for (const auto& queue : relay_) {
    out.u64(static_cast<std::uint64_t>(queue.size()));
    for (const RelayCell& cell : queue) {
      snapshot::write_packet(out, cell.packet);
      out.i64(cell.flight_arrival);
      out.boolean(cell.hold_back);
    }
  }
  // In-flight table, sorted by packet id (canonical form).
  std::vector<PacketId> ids;
  ids.reserve(flights_.size());
  for (const auto& [id, flight] : flights_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out.u64(static_cast<std::uint64_t>(ids.size()));
  for (PacketId id : ids) {
    const Flight& flight = flights_.at(id);
    out.u64(id);
    out.i32(flight.ext_input);
    out.i64(flight.arrival);
    out.i32(flight.priority);
    out.port_set(flight.dests);
    out.port_set(flight.remaining);
  }
  out.u64(dropped_);
  out.u64(copies_injected_);
  out.u64(copies_delivered_);
  out.u64(copies_purged_);
  out.u64(pending_copies_);
  out.u64(forwarded_cells_);
  out.u64(pauses_applied_);
  out.u64(transfer_seq_);
  out.u64(relay_seq_);
  for (const RunningStat& stat : hop_delay_) snapshot::write_stat(out, stat);
  snapshot::write_stat(out, end_to_end_delay_);
  out.i64(faults_advanced_to_);
}

void NetworkFabric::load_state(snapshot::Reader& in) {
  for (auto& sw : switches_) sw->load_state(in);
  const bool has_auditors = in.boolean();
  if (has_auditors != !element_auditors_.empty())
    throw snapshot::SnapshotError(
        "fabric checkpoint element-auditor presence mismatch");
  for (auto& auditor : element_auditors_) auditor->load_state(in);
  for (auto& queue : relay_) {
    queue.clear();
    const std::uint64_t count = in.length(snapshot::kMaxContainer);
    for (std::uint64_t i = 0; i < count; ++i) {
      RelayCell cell;
      cell.packet = snapshot::read_packet(in);
      cell.flight_arrival = in.i64();
      cell.hold_back = in.boolean();
      queue.push_back(std::move(cell));
    }
  }
  flights_.clear();
  const std::uint64_t nflights = in.length(snapshot::kMaxContainer);
  const PortSet all_in = PortSet::all(topo_.num_external_inputs());
  const PortSet all_out = PortSet::all(topo_.num_external_outputs());
  for (std::uint64_t i = 0; i < nflights; ++i) {
    const auto id = static_cast<PacketId>(in.u64());
    Flight flight;
    flight.ext_input = static_cast<PortId>(in.i32());
    flight.arrival = in.i64();
    flight.priority = static_cast<int>(in.i32());
    flight.dests = in.port_set();
    flight.remaining = in.port_set();
    if (flight.ext_input < 0 || !all_in.contains(flight.ext_input) ||
        flight.dests.empty() || !flight.dests.is_subset_of(all_out) ||
        flight.remaining.empty() ||
        !flight.remaining.is_subset_of(flight.dests))
      throw snapshot::SnapshotError("fabric checkpoint flight invalid");
    const auto [it, fresh] = flights_.emplace(id, std::move(flight));
    if (!fresh)
      throw snapshot::SnapshotError("fabric checkpoint duplicate flight id");
  }
  dropped_ = in.u64();
  copies_injected_ = in.u64();
  copies_delivered_ = in.u64();
  copies_purged_ = in.u64();
  pending_copies_ = in.u64();
  forwarded_cells_ = in.u64();
  pauses_applied_ = in.u64();
  transfer_seq_ = in.u64();
  relay_seq_ = in.u64();
  for (RunningStat& stat : hop_delay_) snapshot::read_stat(in, stat);
  snapshot::read_stat(in, end_to_end_delay_);
  const SlotTime cursor = in.i64();
  // Rebuild the per-switch FaultStates by replaying the plan up to the
  // saved cursor.  The events replayed here are NOT forwarded to the
  // observer or the element auditors: the auditors' shadow failure state
  // was restored above, and the uninterrupted run already reported them.
  rebuild_fault_states();
  if (!fault_states_.empty() && cursor >= 0) {
    for (auto& state : fault_states_) (void)state.advance(cursor);
    faults_advanced_to_ = cursor;
  }
}

std::uint64_t NetworkFabric::queued_external_copies() const {
  std::uint64_t total = 0;
  const auto covered_by = [this](int sw, PortId output, PacketId id) {
    const auto it = flights_.find(id);
    FIFOMS_ASSERT(it != flights_.end(), "queued cell of unknown packet");
    return topo_.reachable_externals(sw, output, it->second.dests).count();
  };
  for (int sw = 0; sw < topo_.num_switches(); ++sw) {
    const VoqSwitch& element = *switches_[static_cast<std::size_t>(sw)];
    for (PortId in = 0; in < topo_.radix(); ++in) {
      const McVoqInput& port = element.input(in);
      for (int priority = 0; priority < port.num_classes(); ++priority) {
        for (PortId output : port.occupied()) {
          const RingBuffer<AddressCell>& ring =
              port.address_cells(priority, output);
          for (std::size_t i = 0; i < ring.size(); ++i)
            total += static_cast<std::uint64_t>(
                covered_by(sw, output, ring[i].packet));
        }
      }
    }
  }
  for (int link = 0; link < topo_.num_internal_links(); ++link) {
    const auto& queue = relay_[static_cast<std::size_t>(link)];
    if (queue.empty()) continue;
    const auto [sw, output] = topo_.link_source(link);
    const LinkEnd to = topo_.out_port(sw, output).to;
    for (const RelayCell& cell : queue) {
      // A relayed cell already carries its per-hop destination set for
      // the downstream element; those hop outputs partition its share.
      for (PortId output_next : cell.packet.destinations)
        total += static_cast<std::uint64_t>(
            covered_by(to.sw, output_next, cell.packet.id));
    }
  }
  return total;
}

}  // namespace fifoms::net
