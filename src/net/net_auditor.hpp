// NetworkAuditor: the network-level runtime invariant checker.
//
// Attached through the NetObserver seam, the auditor rebuilds an
// independent end-to-end ledger of every external packet from the event
// stream alone (external injects, link hops, fault events, end-of-slot
// results) and cross-checks the fabric against the network invariants
// (docs/NETWORK.md):
//
//   * end-to-end conservation — every accepted copy is eventually
//     delivered or purged exactly once, and at every end-of-slot the
//     copies still queued inside the fabric (a structural walk over all
//     VOQ rings, expanded through the multicast trees) cover the
//     outstanding ledger exactly — a copy silently dropped mid-stage is
//     caught the same slot;
//   * exactly-once fanout — a copy delivered at an external output must
//     name an output inside the flight's original destination set that
//     was not delivered (or purged) before, with the original input,
//     arrival stamp and payload tag preserved across every hop;
//   * per-flow FIFO along a route — for each (external input, external
//     output) pair, delivered original-arrival stamps never decrease:
//     input-pinned routing plus per-hop FIFO VOQs must compose into
//     end-to-end order, so a reordering inter-stage link is a violation;
//   * no forwarding on a failed link — a copy never crosses an internal
//     wire whose upstream output is currently down, and a purge is only
//     legal while some fault is active;
//   * bounded inter-stage buffers — with link_buffer_capacity > 0 no
//     internal input buffer ever exceeds the configured bound
//     (backpressure must throttle the upstream element first).
//
// Violations panic with a slot-stamped diagnostic.  Like MatchingAuditor
// the checks compile to no-ops when FIFOMS_AUDIT is 0 (Release preset),
// and nothing is checked unless an auditor is attached.  The per-element
// (single-switch) invariants are covered separately by attaching a
// MatchingAuditor to every element: NetworkFabric::Options::audit_switches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/port_set.hpp"
#include "net/net_observer.hpp"

#ifndef FIFOMS_AUDIT
#ifdef NDEBUG
#define FIFOMS_AUDIT 0
#else
#define FIFOMS_AUDIT 1
#endif
#endif

namespace fifoms::net {

class NetworkAuditor final : public NetObserver {
 public:
  struct Options {
    /// Walk every VOQ ring of every element each audited slot and expand
    /// the queued cells through their multicast trees to cross-check the
    /// outstanding-copy ledger.  O(queued address cells) per audited slot.
    bool deep_structure = true;
    /// Audit only every k-th slot's structural state (delivery-stream
    /// checks always run).  1 = every slot.
    SlotTime structure_every = 1;
  };

  NetworkAuditor() : NetworkAuditor(Options{}) {}
  explicit NetworkAuditor(Options options);

  /// False when the build compiled the checks out (FIFOMS_AUDIT=0).
  static constexpr bool enabled() { return FIFOMS_AUDIT != 0; }

  void on_external_inject(const NetworkFabric& fabric,
                          const Packet& packet) override;
  void on_hop(const NetworkFabric& fabric, const HopEvent& event) override;
  void on_net_fault_event(SlotTime now, int sw,
                          const fault::FaultEvent& event) override;
  void on_net_slot(SlotTime now, const NetworkFabric& fabric,
                   const SlotResult& result) override;

  std::uint64_t slots_audited() const { return slots_audited_; }
  std::uint64_t copies_checked() const { return copies_out_; }
  std::uint64_t copies_purged() const { return copies_purged_; }
  std::uint64_t packets_retired() const { return packets_retired_; }
  std::uint64_t hops_seen() const { return hops_seen_; }
  std::uint64_t fault_events_seen() const { return fault_events_seen_; }

  /// Forget all shadow state (call between simulation runs).
  void reset();

 private:
  struct Shadow {  // one live (accepted, not fully retired) flight
    PortId ext_input = kNoPort;
    SlotTime arrival = 0;
    PortSet remaining;
    std::uint64_t payload_tag = 0;
  };

  void check_result_stream(SlotTime now, const NetworkFabric& fabric,
                           const SlotResult& result);
  void check_buffers(SlotTime now, const NetworkFabric& fabric);
  void check_structure(SlotTime now, const NetworkFabric& fabric);
  bool any_fault_active() const;

  Options options_;
  std::unordered_map<PacketId, Shadow> live_;
  std::vector<SlotTime> last_flow_ts_;  // per (ext_input * Out + ext_output)
  // Shadow failure state per switch, rebuilt from the fault event stream.
  std::vector<PortSet> failed_outputs_;
  std::vector<PortSet> failed_inputs_;
  std::uint64_t link_faults_active_ = 0;
  std::uint64_t copies_in_ = 0;
  std::uint64_t copies_out_ = 0;
  std::uint64_t copies_purged_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t packets_retired_ = 0;
  std::uint64_t slots_audited_ = 0;
  std::uint64_t hops_seen_ = 0;
  std::uint64_t fault_events_seen_ = 0;
};

}  // namespace fifoms::net
