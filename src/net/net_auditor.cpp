#include "net/net_auditor.hpp"

#include <limits>
#include <string>

#include "common/panic.hpp"
#include "fault/fault.hpp"
#include "net/network_fabric.hpp"

// Every audit diagnostic goes through this macro so the message always
// carries the slot number (tools/lint.py enforces both properties).
#define FIFOMS_AUDIT_FAIL(now, msg)                                   \
  ::fifoms::panic(__FILE__, __LINE__,                                 \
                  "audit violation at slot " + std::to_string(now) +  \
                      ": " + (msg))

namespace fifoms::net {

#if FIFOMS_AUDIT

namespace {

constexpr SlotTime kNeverServed = std::numeric_limits<SlotTime>::min();

std::string port_str(PortId p) { return std::to_string(p); }
std::string pkt_str(PacketId p) { return std::to_string(p); }
std::string sw_str(int sw) { return std::to_string(sw); }

}  // namespace

NetworkAuditor::NetworkAuditor(Options options) : options_(options) {}

void NetworkAuditor::reset() {
  live_.clear();
  last_flow_ts_.clear();
  failed_outputs_.clear();
  failed_inputs_.clear();
  link_faults_active_ = 0;
  copies_in_ = copies_out_ = copies_purged_ = pending_ = 0;
  packets_retired_ = slots_audited_ = hops_seen_ = fault_events_seen_ = 0;
}

bool NetworkAuditor::any_fault_active() const {
  if (link_faults_active_ > 0) return true;
  for (const PortSet& set : failed_outputs_)
    if (!set.empty()) return true;
  for (const PortSet& set : failed_inputs_)
    if (!set.empty()) return true;
  return false;
}

void NetworkAuditor::on_external_inject(const NetworkFabric& fabric,
                                        const Packet& packet) {
  const SlotTime now = packet.arrival;
  if (packet.input < 0 || packet.input >= fabric.num_inputs())
    FIFOMS_AUDIT_FAIL(now, "accepted packet " + pkt_str(packet.id) +
                               " names external input " +
                               port_str(packet.input) + " out of range");
  if (packet.destinations.empty())
    FIFOMS_AUDIT_FAIL(now, "accepted packet " + pkt_str(packet.id) +
                               " has no destinations");
  if (!packet.destinations.is_subset_of(PortSet::all(fabric.num_outputs())))
    FIFOMS_AUDIT_FAIL(now, "accepted packet " + pkt_str(packet.id) +
                               " names an external output out of range");
  const auto [it, fresh] = live_.emplace(
      packet.id, Shadow{
                     .ext_input = packet.input,
                     .arrival = packet.arrival,
                     .remaining = packet.destinations,
                     .payload_tag = packet.payload_tag(),
                 });
  if (!fresh)
    FIFOMS_AUDIT_FAIL(now, "packet id " + pkt_str(packet.id) +
                               " reused while still in flight");
  const auto fanout = static_cast<std::uint64_t>(packet.fanout());
  copies_in_ += fanout;
  pending_ += fanout;
}

void NetworkAuditor::on_hop(const NetworkFabric& fabric,
                            const HopEvent& event) {
  ++hops_seen_;
  const SlotTime now = event.slot;
  const Topology& topo = fabric.topology();
  const auto it = live_.find(event.packet.id);
  if (it == live_.end())
    FIFOMS_AUDIT_FAIL(now, "hop of unknown packet " +
                               pkt_str(event.packet.id));
  if (event.flight_arrival != it->second.arrival)
    FIFOMS_AUDIT_FAIL(now, "hop of packet " + pkt_str(event.packet.id) +
                               " carries a rewritten arrival stamp");
  const OutPort& wire = topo.out_port(event.from_sw, event.output);
  if (wire.external || wire.to.sw != event.to_sw ||
      wire.to.port != event.input)
    FIFOMS_AUDIT_FAIL(now, "hop of packet " + pkt_str(event.packet.id) +
                               " does not follow the topology wiring "
                               "(switch " +
                               sw_str(event.from_sw) + " output " +
                               port_str(event.output) + ")");
  if (static_cast<std::size_t>(event.from_sw) < failed_outputs_.size() &&
      failed_outputs_[static_cast<std::size_t>(event.from_sw)].contains(
          event.output))
    FIFOMS_AUDIT_FAIL(now, "cell of packet " + pkt_str(event.packet.id) +
                               " forwarded on failed inter-stage link "
                               "(switch " +
                               sw_str(event.from_sw) + " output " +
                               port_str(event.output) + ")");
}

void NetworkAuditor::on_net_fault_event(SlotTime now, int sw,
                                        const fault::FaultEvent& event) {
  ++fault_events_seen_;
  const auto s = static_cast<std::size_t>(sw);
  if (failed_outputs_.size() <= s) failed_outputs_.resize(s + 1);
  if (failed_inputs_.size() <= s) failed_inputs_.resize(s + 1);
  switch (event.kind) {
    case fault::FaultKind::kOutputDown:
      if (failed_outputs_[s].contains(event.port))
        FIFOMS_AUDIT_FAIL(now, "fault stream corrupt: switch " + sw_str(sw) +
                                   " output " + port_str(event.port) +
                                   " downed twice");
      failed_outputs_[s].insert(event.port);
      break;
    case fault::FaultKind::kOutputUp:
      if (!failed_outputs_[s].contains(event.port))
        FIFOMS_AUDIT_FAIL(now, "fault stream corrupt: switch " + sw_str(sw) +
                                   " output " + port_str(event.port) +
                                   " restored while up");
      failed_outputs_[s].erase(event.port);
      break;
    case fault::FaultKind::kInputDown:
      failed_inputs_[s].insert(event.port);
      break;
    case fault::FaultKind::kInputUp:
      failed_inputs_[s].erase(event.port);
      break;
    case fault::FaultKind::kLinkDown:
      ++link_faults_active_;
      break;
    case fault::FaultKind::kLinkUp:
      --link_faults_active_;
      break;
    case fault::FaultKind::kGrantCorrupt:
      FIFOMS_AUDIT_FAIL(now,
                        "grant corruption event inside a fabric (rejected "
                        "by NetFaultPlan)");
  }
}

void NetworkAuditor::check_result_stream(SlotTime now,
                                         const NetworkFabric& fabric,
                                         const SlotResult& result) {
  const auto num_outputs = static_cast<std::size_t>(fabric.num_outputs());
  const auto flows =
      static_cast<std::size_t>(fabric.num_inputs()) * num_outputs;
  if (last_flow_ts_.size() < flows)
    last_flow_ts_.resize(flows, kNeverServed);
  for (const Delivery& d : result.deliveries) {
    const auto it = live_.find(d.packet);
    if (it == live_.end())
      FIFOMS_AUDIT_FAIL(now,
                        "delivery of unknown packet " + pkt_str(d.packet));
    Shadow& shadow = it->second;
    if (!shadow.remaining.contains(d.output))
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " delivered at external output " +
                                 port_str(d.output) +
                                 " outside its outstanding fanout "
                                 "(duplicate or foreign copy)");
    if (d.input != shadow.ext_input)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " delivered with external input " +
                                 port_str(d.input) + ", accepted at " +
                                 port_str(shadow.ext_input));
    if (d.arrival != shadow.arrival)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " delivered with a rewritten arrival "
                                 "stamp");
    if (d.payload_tag != shadow.payload_tag)
      FIFOMS_AUDIT_FAIL(now, "payload corruption across the fabric: "
                             "packet " +
                                 pkt_str(d.packet) + " at external output " +
                                 port_str(d.output));
    const std::size_t flow =
        static_cast<std::size_t>(shadow.ext_input) * num_outputs +
        static_cast<std::size_t>(d.output);
    if (shadow.arrival < last_flow_ts_[flow])
      FIFOMS_AUDIT_FAIL(now, "per-flow FIFO order violated on route (" +
                                 port_str(shadow.ext_input) + " -> " +
                                 port_str(d.output) + "): arrival " +
                                 std::to_string(shadow.arrival) +
                                 " delivered after " +
                                 std::to_string(last_flow_ts_[flow]));
    last_flow_ts_[flow] = shadow.arrival;
    shadow.remaining.erase(d.output);
    ++copies_out_;
    --pending_;
    if (shadow.remaining.empty()) {
      live_.erase(it);
      ++packets_retired_;
    }
  }
  for (const Delivery& d : result.purged) {
    const auto it = live_.find(d.packet);
    if (it == live_.end())
      FIFOMS_AUDIT_FAIL(now, "purge of unknown packet " + pkt_str(d.packet));
    Shadow& shadow = it->second;
    if (!shadow.remaining.contains(d.output))
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " purged at external output " +
                                 port_str(d.output) +
                                 " outside its outstanding fanout");
    if (!any_fault_active())
      FIFOMS_AUDIT_FAIL(now, "copy of packet " + pkt_str(d.packet) +
                                 " purged with no active fault");
    shadow.remaining.erase(d.output);
    ++copies_purged_;
    --pending_;
    if (shadow.remaining.empty()) {
      live_.erase(it);
      ++packets_retired_;
    }
  }
}

void NetworkAuditor::check_buffers(SlotTime now,
                                   const NetworkFabric& fabric) {
  const std::size_t capacity = fabric.options().link_buffer_capacity;
  if (capacity == 0) return;
  const Topology& topo = fabric.topology();
  for (int link = 0; link < topo.num_internal_links(); ++link) {
    const auto [sw, output] = topo.link_source(link);
    const LinkEnd to = topo.out_port(sw, output).to;
    const std::size_t queued = fabric.switch_at(to.sw).occupancy(to.port);
    if (queued > capacity)
      FIFOMS_AUDIT_FAIL(now, "inter-stage buffer over capacity at switch " +
                                 sw_str(to.sw) + " input " +
                                 port_str(to.port) + ": " +
                                 std::to_string(queued) + " cells, bound " +
                                 std::to_string(capacity));
  }
}

void NetworkAuditor::check_structure(SlotTime now,
                                     const NetworkFabric& fabric) {
  // Ledger vs the fabric's own O(1) counter first (cheap), then vs the
  // structural ground truth (the ring walk): a copy that evaporated
  // mid-stage leaves the counters balanced but the rings short.
  if (pending_ != fabric.pending_copies())
    FIFOMS_AUDIT_FAIL(now, "fabric flight ledger disagrees with the audit "
                           "ledger: " +
                               std::to_string(fabric.pending_copies()) +
                               " vs " + std::to_string(pending_) +
                               " outstanding copies");
  const std::uint64_t queued = fabric.queued_external_copies();
  if (queued != pending_)
    FIFOMS_AUDIT_FAIL(now, "network conservation broken: " +
                               std::to_string(pending_) +
                               " copies outstanding but the fabric holds " +
                               std::to_string(queued));
}

void NetworkAuditor::on_net_slot(SlotTime now, const NetworkFabric& fabric,
                                 const SlotResult& result) {
  check_result_stream(now, fabric, result);
  check_buffers(now, fabric);
  if (options_.deep_structure &&
      (options_.structure_every <= 1 ||
       now % options_.structure_every == 0))
    check_structure(now, fabric);
  ++slots_audited_;
}

#else  // !FIFOMS_AUDIT — the auditor compiles to an inert observer.

NetworkAuditor::NetworkAuditor(Options options) : options_(options) {}
void NetworkAuditor::reset() {}
bool NetworkAuditor::any_fault_active() const { return false; }
void NetworkAuditor::on_external_inject(const NetworkFabric&,
                                        const Packet&) {}
void NetworkAuditor::on_hop(const NetworkFabric&, const HopEvent&) {}
void NetworkAuditor::on_net_fault_event(SlotTime, int,
                                        const fault::FaultEvent&) {}
void NetworkAuditor::on_net_slot(SlotTime, const NetworkFabric&,
                                 const SlotResult&) {}
void NetworkAuditor::check_result_stream(SlotTime, const NetworkFabric&,
                                         const SlotResult&) {}
void NetworkAuditor::check_buffers(SlotTime, const NetworkFabric&) {}
void NetworkAuditor::check_structure(SlotTime, const NetworkFabric&) {}

#endif  // FIFOMS_AUDIT

}  // namespace fifoms::net
