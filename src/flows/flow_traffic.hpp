// FlowTraffic: flow-level multicast workload on top of a GroupTable.
//
// Each input port carries Bernoulli(p) packet arrivals; every packet
// belongs to a multicast group drawn from a Zipf popularity distribution,
// and its destination set is the group's *current* membership (so
// join/leave churn is visible mid-flow).  Optional churn: each slot, with
// probability churn_rate, one uniformly chosen (group, port) membership
// is toggled — the steady-state group sizes then wander around their
// initial values.
//
// This is the workload model the paper's motivation implies (channels /
// feeds with skewed popularity) and the substrate the flow-level example
// uses for per-group latency statistics.
#pragma once

#include "flows/group_table.hpp"
#include "flows/zipf.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms {

class FlowTraffic final : public TrafficModel {
 public:
  /// `table` is copied; churn mutates the internal copy only.
  FlowTraffic(GroupTable table, double p, double zipf_skew,
              double churn_rate = 0.0);

  std::string_view name() const override { return "flows"; }
  PortSet arrival(PortId input, SlotTime now, Rng& rng) override;
  double offered_load() const override;

  const GroupTable& groups() const { return table_; }
  const ZipfSampler& popularity() const { return popularity_; }

  /// Group the most recent arrival() packet belonged to (kNoGroup before
  /// the first arrival).  Lets callers attribute packets to flows without
  /// widening the TrafficModel interface.
  static constexpr GroupId kNoGroup = 0xffffffffu;
  GroupId last_group() const { return last_group_; }

  /// Churn mutates the internal table copy; both it and the last-group
  /// cursor must survive a resume.
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  GroupTable table_;
  double p_;
  ZipfSampler popularity_;
  double churn_rate_;
  GroupId last_group_ = kNoGroup;
};

}  // namespace fifoms
