#include "flows/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/panic.hpp"

namespace fifoms {

ZipfSampler::ZipfSampler(int n, double s) : skew_(s) {
  FIFOMS_ASSERT(n >= 1, "Zipf needs at least one rank");
  FIFOMS_ASSERT(s >= 0.0, "Zipf skew cannot be negative");
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[static_cast<std::size_t>(rank)] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against rounding at the top
}

double ZipfSampler::probability(int rank) const {
  FIFOMS_ASSERT(rank >= 0 && rank < size(), "rank out of range");
  const auto index = static_cast<std::size_t>(rank);
  return rank == 0 ? cdf_[0] : cdf_[index] - cdf_[index - 1];
}

int ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(std::distance(cdf_.begin(), it));
}

}  // namespace fifoms
