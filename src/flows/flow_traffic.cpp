#include "flows/flow_traffic.hpp"

#include "snapshot/snapshot.hpp"

namespace fifoms {

FlowTraffic::FlowTraffic(GroupTable table, double p, double zipf_skew,
                         double churn_rate)
    : TrafficModel(table.num_ports()), table_(std::move(table)), p_(p),
      popularity_(static_cast<int>(table_.size()), zipf_skew),
      churn_rate_(churn_rate) {
  FIFOMS_ASSERT(p >= 0.0 && p <= 1.0, "arrival probability out of [0,1]");
  FIFOMS_ASSERT(churn_rate >= 0.0 && churn_rate <= 1.0,
                "churn rate out of [0,1]");
  FIFOMS_ASSERT(table_.size() >= 1, "flow traffic needs at least one group");
}

PortSet FlowTraffic::arrival(PortId input, SlotTime /*now*/, Rng& rng) {
  // Churn is driven once per slot from input 0's call so the table
  // mutates at a rate independent of the port count.
  if (input == 0 && churn_rate_ > 0.0 && rng.bernoulli(churn_rate_)) {
    const auto group =
        static_cast<GroupId>(rng.next_below(table_.size()));
    const auto port = static_cast<PortId>(
        rng.next_below(static_cast<std::uint64_t>(num_ports())));
    if (table_.members(group).contains(port)) {
      table_.leave(group, port);
    } else {
      table_.join(group, port);
    }
  }

  if (!rng.bernoulli(p_)) return {};
  const auto group = static_cast<GroupId>(popularity_.sample(rng));
  const PortSet& members = table_.members(group);
  if (members.empty()) return {};  // nobody joined: packet is filtered
  last_group_ = group;
  return members;
}

double FlowTraffic::offered_load() const {
  // Expected copies per input per slot: p * E_popularity[|members|].
  const double mean_fanout = popularity_.expectation([&](int rank) {
    return static_cast<double>(
        table_.members(static_cast<GroupId>(rank)).count());
  });
  return p_ * mean_fanout;
}


void FlowTraffic::save_state(snapshot::Writer& out) const {
  out.u64(table_.size());
  for (GroupId g = 0; g < static_cast<GroupId>(table_.size()); ++g)
    out.port_set(table_.members(g));
  out.u32(last_group_);
}

void FlowTraffic::load_state(snapshot::Reader& in) {
  const std::size_t groups = in.length(table_.size());
  if (groups != table_.size())
    throw snapshot::SnapshotError("flow-traffic group count mismatch");
  for (GroupId g = 0; g < static_cast<GroupId>(groups); ++g)
    table_.set_members(g, in.port_set());
  last_group_ = in.u32();
}

}  // namespace fifoms
