// ZipfSampler: draw from a Zipf(s) distribution over ranks 0..n-1.
//
// Multicast group popularity in deployed systems (TV channels, market
// data feeds, replication groups) is heavy-tailed; the flow-level traffic
// model uses this sampler to pick which group a packet belongs to.
// Implementation: precomputed CDF + binary search, O(log n) per draw,
// deterministic given the Rng stream.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace fifoms {

class ZipfSampler {
 public:
  /// Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.  s = 0 is
  /// uniform; larger s concentrates mass on low ranks.
  ZipfSampler(int n, double s);

  int size() const { return static_cast<int>(cdf_.size()); }
  double skew() const { return skew_; }

  /// Probability of a given rank.
  double probability(int rank) const;

  /// Draw one rank.
  int sample(Rng& rng) const;

  /// Expected value of f(rank) under the distribution.
  template <typename F>
  double expectation(F f) const {
    double total = 0.0;
    for (int rank = 0; rank < size(); ++rank)
      total += probability(rank) * f(rank);
    return total;
  }

 private:
  double skew_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace fifoms
