#include "flows/group_table.hpp"

#include "traffic/uniform_fanout.hpp"

namespace fifoms {

GroupId GroupTable::add_group(PortSet members) {
  FIFOMS_ASSERT(members.is_subset_of(PortSet::all(num_ports_)),
                "group member beyond switch radix");
  groups_.push_back(members);
  return static_cast<GroupId>(groups_.size() - 1);
}

const PortSet& GroupTable::members(GroupId group) const {
  FIFOMS_ASSERT(group < groups_.size(), "unknown group id");
  return groups_[group];
}

PortSet& GroupTable::members_mutable(GroupId group) {
  FIFOMS_ASSERT(group < groups_.size(), "unknown group id");
  return groups_[group];
}

void GroupTable::join(GroupId group, PortId port) {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "port beyond switch radix");
  members_mutable(group).insert(port);
}

void GroupTable::leave(GroupId group, PortId port) {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "port beyond switch radix");
  members_mutable(group).erase(port);
}

std::size_t GroupTable::total_memberships() const {
  std::size_t total = 0;
  for (const PortSet& group : groups_)
    total += static_cast<std::size_t>(group.count());
  return total;
}

GroupTable GroupTable::random(int num_ports, int count, int min_size,
                              int max_size, Rng& rng) {
  FIFOMS_ASSERT(count >= 1, "need at least one group");
  FIFOMS_ASSERT(min_size >= 1 && min_size <= max_size &&
                    max_size <= num_ports,
                "group size bounds out of range");
  GroupTable table(num_ports);
  for (int g = 0; g < count; ++g) {
    const int size = static_cast<int>(rng.uniform_int(min_size, max_size));
    table.add_group(
        UniformFanoutTraffic::random_subset(num_ports, size, rng));
  }
  return table;
}

}  // namespace fifoms
