// GroupTable: multicast group membership, the router-side state that a
// real deployment maintains via IGMP/PIM joins and leaves.
//
// A group is a stable id mapping to a PortSet of member output ports.
// The table supports join/leave churn; the flow-level traffic model looks
// up the current membership at packet creation, so long-lived flows see
// membership changes mid-stream exactly as a real switch would.
#pragma once

#include <cstdint>
#include <vector>

#include "common/panic.hpp"
#include "common/port_set.hpp"
#include "common/rng.hpp"

namespace fifoms {

using GroupId = std::uint32_t;

class GroupTable {
 public:
  explicit GroupTable(int num_ports) : num_ports_(num_ports) {
    FIFOMS_ASSERT(num_ports > 0 && num_ports <= kMaxPorts,
                  "unsupported port count");
  }

  int num_ports() const { return num_ports_; }
  std::size_t size() const { return groups_.size(); }

  /// Register a group; members may be empty (a group nobody joined yet).
  GroupId add_group(PortSet members);

  const PortSet& members(GroupId group) const;

  void join(GroupId group, PortId port);
  void leave(GroupId group, PortId port);

  /// Total (group, member) pairs — the table's memory footprint driver.
  std::size_t total_memberships() const;

  /// Populate `count` groups whose sizes are uniform on
  /// [min_size, max_size] with uniformly random members.
  static GroupTable random(int num_ports, int count, int min_size,
                           int max_size, Rng& rng);

  /// Overwrite one group's membership wholesale (snapshot/restore of
  /// churn-mutated tables; normal mutation goes through join/leave).
  void set_members(GroupId group, const PortSet& members) {
    members_mutable(group) = members;
  }

 private:
  PortSet& members_mutable(GroupId group);

  int num_ports_;
  std::vector<PortSet> groups_;
};

}  // namespace fifoms
