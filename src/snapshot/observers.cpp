#include "snapshot/observers.hpp"

#include "fault/fault.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms::snapshot {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

void DigestObserver::mix(std::uint64_t word) {
  // FNV-1a one byte at a time, little-endian.
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (word >> (8 * i)) & 0xff;
    digest_ *= kFnvPrime;
  }
}

void DigestObserver::on_inject(const SwitchModel& sw, const Packet& packet) {
  if (inner_ != nullptr) inner_->on_inject(sw, packet);
}

void DigestObserver::on_fault_event(SlotTime now, const SwitchModel& sw,
                                    const fault::FaultEvent& event) {
  mix(0xfau);  // domain separator: fault event
  mix(static_cast<std::uint64_t>(now));
  mix(static_cast<std::uint64_t>(event.kind));
  mix(static_cast<std::uint64_t>(event.port));
  mix(static_cast<std::uint64_t>(event.output));
  if (inner_ != nullptr) inner_->on_fault_event(now, sw, event);
}

void DigestObserver::on_slot(SlotTime now, const SwitchModel& sw,
                             const SlotResult& result) {
  for (const Delivery& d : result.deliveries) {
    mix(0xdeu);  // domain separator: delivery
    mix(static_cast<std::uint64_t>(now));
    mix(d.packet);
    mix(static_cast<std::uint64_t>(d.input));
    mix(static_cast<std::uint64_t>(d.output));
    mix(d.payload_tag);
  }
  for (const Delivery& d : result.purged) {
    mix(0xb9u);  // domain separator: purge
    mix(static_cast<std::uint64_t>(now));
    mix(d.packet);
    mix(static_cast<std::uint64_t>(d.input));
    mix(static_cast<std::uint64_t>(d.output));
    mix(d.payload_tag);
  }
  if (inner_ != nullptr) inner_->on_slot(now, sw, result);
}

void DigestObserver::save_state(Writer& out) const {
  out.u64(digest_);
  out.boolean(inner_ != nullptr);
  if (inner_ != nullptr) inner_->save_state(out);
}

void DigestObserver::load_state(Reader& in) {
  digest_ = in.u64();
  const bool has_inner = in.boolean();
  if (has_inner != (inner_ != nullptr))
    throw SnapshotError("digest checkpoint inner-observer presence mismatch");
  if (inner_ != nullptr) inner_->load_state(in);
}

void TraceRingObserver::push(std::string line) {
  if (capacity_ == 0) return;
  if (lines_.size() == capacity_) lines_.pop_front();
  lines_.push_back(std::move(line));
}

void TraceRingObserver::on_inject(const SwitchModel& sw,
                                  const Packet& packet) {
  std::string line = "inject slot=" + std::to_string(packet.arrival) +
                     " packet=" + std::to_string(packet.id) +
                     " input=" + std::to_string(packet.input) + " dests=";
  bool first = true;
  for (PortId output : packet.destinations) {
    if (!first) line += '+';
    line += std::to_string(output);
    first = false;
  }
  if (packet.priority != 0)
    line += " priority=" + std::to_string(packet.priority);
  push(std::move(line));
  if (inner_ != nullptr) inner_->on_inject(sw, packet);
}

void TraceRingObserver::on_fault_event(SlotTime now, const SwitchModel& sw,
                                       const fault::FaultEvent& event) {
  push("fault slot=" + std::to_string(now) + " " + fault::to_string(event));
  if (inner_ != nullptr) inner_->on_fault_event(now, sw, event);
}

void TraceRingObserver::on_slot(SlotTime now, const SwitchModel& sw,
                                const SlotResult& result) {
  for (const Delivery& d : result.deliveries)
    push("deliver slot=" + std::to_string(now) +
         " packet=" + std::to_string(d.packet) +
         " input=" + std::to_string(d.input) +
         " output=" + std::to_string(d.output));
  for (const Delivery& d : result.purged)
    push("purge slot=" + std::to_string(now) +
         " packet=" + std::to_string(d.packet) +
         " input=" + std::to_string(d.input) +
         " output=" + std::to_string(d.output));
  if (inner_ != nullptr) inner_->on_slot(now, sw, result);
}

void TraceRingObserver::save_state(Writer& out) const {
  out.u64(static_cast<std::uint64_t>(lines_.size()));
  for (const std::string& line : lines_) out.str(line);
  out.boolean(inner_ != nullptr);
  if (inner_ != nullptr) inner_->save_state(out);
}

void TraceRingObserver::load_state(Reader& in) {
  lines_.clear();
  const std::size_t count = in.length(kMaxContainer);
  for (std::size_t i = 0; i < count; ++i) {
    std::string line = in.str();
    if (capacity_ > 0 && lines_.size() == capacity_) lines_.pop_front();
    if (capacity_ > 0) lines_.push_back(std::move(line));
  }
  const bool has_inner = in.boolean();
  if (has_inner != (inner_ != nullptr))
    throw SnapshotError("trace checkpoint inner-observer presence mismatch");
  if (inner_ != nullptr) inner_->load_state(in);
}

}  // namespace fifoms::snapshot
