// Recovery-harness observers (docs/RECOVERY.md).
//
// DigestObserver folds every delivery, purge and fault event into one
// FNV-1a word — the cheap run fingerprint the kill-test compares: a
// SIGKILLed run resumed from its last checkpoint must converge to the
// digest of the uninterrupted golden run, so digest equality certifies
// bit-identical delivery streams without storing them.
//
// TraceRingObserver keeps the last K slot events as human-readable lines.
// When an invariant audit panics mid-soak, the ring's content is the
// "arrival trace tail" of the counterexample bundle: the events that led
// to the defect, replayable through fifoms_replay.
//
// Both chain an optional inner observer (typically the MatchingAuditor)
// so one Simulator observer slot carries the whole harness stack, and
// both serialise their state so a resumed run observes with exactly the
// ledger of the uninterrupted one.
#pragma once

#include <deque>
#include <string>

#include "sim/observer.hpp"

namespace fifoms::snapshot {

class DigestObserver final : public SlotObserver {
 public:
  explicit DigestObserver(SlotObserver* inner = nullptr) : inner_(inner) {}

  void on_inject(const SwitchModel& sw, const Packet& packet) override;
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override;
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override;

  /// FNV-1a fold of every (slot, packet, input, output, payload_tag)
  /// delivered or purged, and every fault event applied, in stream order.
  std::uint64_t digest() const { return digest_; }

  void save_state(Writer& out) const override;
  void load_state(Reader& in) override;

 private:
  void mix(std::uint64_t word);

  SlotObserver* inner_ = nullptr;           // not owned; may be null
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

class TraceRingObserver final : public SlotObserver {
 public:
  explicit TraceRingObserver(std::size_t capacity = 256,
                             SlotObserver* inner = nullptr)
      : capacity_(capacity), inner_(inner) {}

  void on_inject(const SwitchModel& sw, const Packet& packet) override;
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override;
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override;

  /// Oldest-first tail of recent events (at most `capacity` lines).
  const std::deque<std::string>& lines() const { return lines_; }

  void save_state(Writer& out) const override;
  void load_state(Reader& in) override;

 private:
  void push(std::string line);

  std::size_t capacity_;
  SlotObserver* inner_ = nullptr;  // not owned; may be null
  std::deque<std::string> lines_;
};

}  // namespace fifoms::snapshot
