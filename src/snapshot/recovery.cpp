#include "snapshot/recovery.hpp"

#include <chrono>
#include <filesystem>
#include <thread>

#include "snapshot/snapshot.hpp"

namespace fifoms::snapshot {

RecoveryRunner::RecoveryRunner(Simulator& simulator, RecoveryOptions options)
    : simulator_(simulator),
      options_(std::move(options)),
      store_(options_.dir, options_.stem, simulator.state_fingerprint(),
             options_.keep) {
  FIFOMS_ASSERT(options_.max_retries >= 0, "negative retry budget");
}

std::int64_t RecoveryRunner::restore_latest(RecoveryReport& report) {
  // Walk newest-first: load_latest() already skips torn/corrupt frames
  // (collecting diagnostics); a frame that decodes but fails the model's
  // semantic validation is deleted here so the next iteration falls back
  // to its predecessor — "previous good checkpoint" all the way down.
  for (;;) {
    std::optional<LoadedCheckpoint> loaded = store_.load_latest();
    if (!loaded) return -1;
    for (std::string& note : loaded->rejected)
      report.rejected_files.push_back(std::move(note));
    try {
      Reader reader(loaded->payload);
      simulator_.load_state(reader);
      reader.expect_end();
      return static_cast<std::int64_t>(loaded->epoch);
    } catch (const SnapshotError& e) {
      report.rejected_files.push_back(loaded->path.string() +
                                      ": semantic reject: " + e.what());
      std::error_code ec;
      std::filesystem::remove(loaded->path, ec);  // fall back to predecessor
    }
  }
}

RecoveryReport RecoveryRunner::run() {
  RecoveryReport report;

  const auto save_checkpoint = [&](std::uint64_t epoch) {
    Writer writer;
    simulator_.save_state(writer);
    store_.save(epoch, writer.bytes());
    ++report.checkpoints_written;
    report.last_checkpoint_slot = static_cast<std::int64_t>(epoch);
    if (options_.on_checkpoint) options_.on_checkpoint(epoch, writer.size());
  };

  for (int attempt = 0;; ++attempt) {
    try {
      // Arm the run: resume from the newest valid checkpoint when asked,
      // else a fresh slot-0 run.  Restarts always re-enter through here,
      // so a crash rewinds to the last durable state.
      std::int64_t restored = -1;
      if (options_.resume || attempt > 0) restored = restore_latest(report);
      // No usable checkpoint: a first attempt trusts the caller's fresh
      // switch (prepare never cleared; run() never did), but a RESTART
      // must scrub the dirty state of the failed attempt first.
      if (restored < 0) {
        if (attempt == 0)
          simulator_.prepare();
        else
          simulator_.restart();
      }
      if (attempt == 0 && restored >= 0) {
        report.resumed = true;
        report.resumed_from_slot = restored;
      }

      while (!simulator_.done()) {
        simulator_.step();
        const SlotTime now = simulator_.now();
        if (options_.checkpoint_every > 0 &&
            now % options_.checkpoint_every == 0 &&
            static_cast<std::int64_t>(now) > report.last_checkpoint_slot)
          save_checkpoint(static_cast<std::uint64_t>(now));
        if (options_.stop_requested && options_.stop_requested()) {
          // Clean shutdown: park a final checkpoint so the next --resume
          // continues from this exact slot boundary.
          if (static_cast<std::int64_t>(now) > report.last_checkpoint_slot)
            save_checkpoint(static_cast<std::uint64_t>(now));
          return report;
        }
      }
      report.result = simulator_.finalize();
      report.completed = true;
      return report;
    } catch (const std::exception& e) {
      report.error = e.what();
      if (attempt >= options_.max_retries) {
        report.quarantined = true;
        return report;
      }
      ++report.restarts;
      if (options_.backoff_initial_ms > 0) {
        const auto delay = std::chrono::milliseconds(
            static_cast<std::int64_t>(options_.backoff_initial_ms) << attempt);
        std::this_thread::sleep_for(delay);
      }
    }
  }
}

}  // namespace fifoms::snapshot
