// Replayable counterexample bundles (docs/RECOVERY.md).
//
// When an invariant audit panics mid-soak, the harness's panic hook
// freezes the evidence as a bundle directory:
//
//   <dir>/manifest.txt   key=value lines (scenario, seed, ports, ...)
//   <dir>/checkpoint.ckpt  newest good checkpoint frame (optional)
//   <dir>/trace.txt      the trace ring's tail, oldest first
//
// fifoms_replay consumes the bundle: it rebuilds the identical scenario
// from the manifest, restores the checkpoint and steps forward until the
// defect reproduces — a panic turned into a deterministic repro script.
// All bytes go through write_file_atomic (snapshot_io), so a bundle is
// never half-written even though it is born inside a dying process.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace fifoms::snapshot {

struct ReplayBundle {
  /// Ordered key=value pairs; keys must not contain '=' or '\n'.
  std::vector<std::pair<std::string, std::string>> manifest;
  /// Encoded checkpoint frame bytes; empty = no checkpoint was taken
  /// before the defect (replay then starts from slot 0).
  std::vector<std::uint8_t> checkpoint;
  /// Event lines leading up to the defect, oldest first.
  std::vector<std::string> trace;

  /// First value for `key`, or `fallback`.
  std::string value_or(const std::string& key, std::string fallback) const;
};

/// Write the bundle under `dir` (created if needed).  Throws
/// SnapshotError on IO failure.
void write_bundle(const std::filesystem::path& dir,
                  const ReplayBundle& bundle);

/// Read a bundle written by write_bundle.  Throws SnapshotError when the
/// directory or manifest is missing or malformed.  A missing checkpoint
/// file yields an empty `checkpoint` (valid: the defect predated the
/// first checkpoint).
ReplayBundle read_bundle(const std::filesystem::path& dir);

}  // namespace fifoms::snapshot
