// Deterministic snapshot codec (docs/RECOVERY.md).
//
// A snapshot is the full mutable state of a simulation — every VOQ ring,
// scheduler cursor, RNG word, fault-plan cursor, in-flight fabric buffer
// and accumulated statistic — serialised so that restore(snapshot(S))
// resumed for k slots is bit-identical to running S for k slots straight.
//
// The codec is deliberately dumb: explicit little-endian primitives with
// bounds-checked reads, wrapped in a versioned, CRC-checked frame.  There
// is no schema negotiation — a version bump is a format break, and an old
// engine refuses a new frame cleanly (docs/RECOVERY.md states the
// versioning policy).  Canonical-form discipline follows the bounded
// verifier's state encoding (src/verify/): containers with nondeterministic
// iteration order (hash maps) are serialised sorted by key, so equal
// states produce equal bytes and checkpoint files are diffable.
//
// Error handling contract: snapshot/restore runs exactly when the process
// is least healthy (crash recovery, corrupted files, mid-fault-storm
// checkpoints), so like src/fault/ it must degrade, never abort.  Every
// failure throws SnapshotError — a FaultError subclass, keeping the whole
// recovery path under the analyzer's fault-path exception discipline —
// and the `no-raw-fwrite-in-snapshot-path` lint rule forbids unchecked
// file IO anywhere in src/snapshot/ outside the checksummed writer
// (snapshot_io.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/port_set.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace fifoms::snapshot {

/// Thrown on malformed, truncated, corrupted or version-mismatched
/// snapshot bytes.  Subclasses fault::FaultError: recovery-path code may
/// only throw FaultError kinds (fault-path-exception-discipline).
class SnapshotError : public fault::FaultError {
 public:
  using fault::FaultError::FaultError;
};

/// Format version; bump on ANY byte-layout change (docs/RECOVERY.md).
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only byte sink with explicit little-endian primitives.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);
  void port_set(const PortSet& v);

  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a byte span; every primitive throws
/// SnapshotError on underrun, so truncated or mutated payloads surface as
/// clean exceptions, never out-of-bounds reads (the fuzz harness's
/// contract).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();
  std::string str();
  PortSet port_set();

  std::size_t remaining() const { return bytes_.size() - at_; }
  /// Assert the payload was consumed exactly (trailing garbage rejects).
  void expect_end() const;

  /// Read a container length and validate it against a sanity `limit`
  /// (corrupted-but-CRC-valid bytes must not drive allocations wild).
  std::size_t length(std::size_t limit);

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

/// A decoded checkpoint frame.  `payload` views the caller's buffer.
struct Frame {
  std::uint32_t version = 0;
  /// Monotonic checkpoint epoch (the slot the snapshot was taken at).
  std::uint64_t epoch = 0;
  /// Fingerprint of the configuration the snapshot belongs to; restore
  /// into a differently-configured run is refused.
  std::uint64_t fingerprint = 0;
  std::span<const std::uint8_t> payload;
};

/// Wrap `payload` in the checksummed frame: magic, version, epoch,
/// fingerprint, payload length, payload CRC, payload bytes.
std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload,
                                       std::uint64_t epoch,
                                       std::uint64_t fingerprint);

/// Validate and unwrap a frame.  Throws SnapshotError on bad magic, any
/// unknown version, a length mismatch (torn file) or a CRC mismatch.
Frame decode_frame(std::span<const std::uint8_t> bytes);

/// decode_frame + fingerprint check against the expected configuration.
Frame decode_frame(std::span<const std::uint8_t> bytes,
                   std::uint64_t expected_fingerprint);

/// One mixing step for configuration fingerprints (splitmix64 chaining).
std::uint64_t mix_fingerprint(std::uint64_t acc, std::uint64_t word);

}  // namespace fifoms::snapshot
