#include "snapshot/state_codec.hpp"

#include <algorithm>
#include <unordered_map>

namespace fifoms::snapshot {

void write_rng(Writer& out, const Rng& rng) {
  for (std::uint64_t word : rng.state()) out.u64(word);
}

void read_rng(Reader& in, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = in.u64();
  rng.set_state(state);
}

void write_stat(Writer& out, const RunningStat& stat) {
  const RunningStat::RawState s = stat.raw_state();
  out.u64(s.count);
  out.f64(s.mean);
  out.f64(s.m2);
  out.f64(s.min);
  out.f64(s.max);
}

void read_stat(Reader& in, RunningStat& stat) {
  RunningStat::RawState s;
  s.count = in.u64();
  s.mean = in.f64();
  s.m2 = in.f64();
  s.min = in.f64();
  s.max = in.f64();
  stat.set_raw_state(s);
}

void write_histogram(Writer& out, const Histogram& hist) {
  const std::vector<std::uint64_t>& buckets = hist.buckets();
  out.u64(buckets.size());
  for (std::uint64_t count : buckets) out.u64(count);
}

void read_histogram(Reader& in, Histogram& hist) {
  const std::size_t size = in.length(kMaxContainer);
  std::vector<std::uint64_t> buckets(size);
  for (auto& count : buckets) count = in.u64();
  hist.restore(buckets);
}

void write_p2(Writer& out, const P2Quantile& q) {
  const P2Quantile::RawState s = q.raw_state();
  out.u64(s.count);
  for (double h : s.heights) out.f64(h);
  for (double p : s.positions) out.f64(p);
  for (double d : s.desired) out.f64(d);
  for (double i : s.increments) out.f64(i);
}

void read_p2(Reader& in, P2Quantile& q) {
  P2Quantile::RawState s;
  s.count = in.u64();
  for (auto& h : s.heights) h = in.f64();
  for (auto& p : s.positions) p = in.f64();
  for (auto& d : s.desired) d = in.f64();
  for (auto& i : s.increments) i = in.f64();
  q.set_raw_state(s);
}

void write_packet(Writer& out, const Packet& packet) {
  out.u64(packet.id);
  out.i32(packet.input);
  out.i64(packet.arrival);
  out.port_set(packet.destinations);
  out.i32(packet.priority);
}

Packet read_packet(Reader& in) {
  Packet packet;
  packet.id = in.u64();
  packet.input = in.i32();
  packet.arrival = in.i64();
  packet.destinations = in.port_set();
  packet.priority = in.i32();
  return packet;
}

void write_fifo_cell(Writer& out, const FifoCell& cell) {
  out.u64(cell.packet);
  out.i64(cell.arrival);
  out.port_set(cell.remaining);
  out.i32(cell.initial_fanout);
  out.u64(cell.payload_tag);
}

FifoCell read_fifo_cell(Reader& in) {
  FifoCell cell;
  cell.packet = in.u64();
  cell.arrival = in.i64();
  cell.remaining = in.port_set();
  cell.initial_fanout = in.i32();
  cell.payload_tag = in.u64();
  if (cell.remaining.empty())
    throw SnapshotError("queued multicast cell with empty residue");
  return cell;
}

void write_unicast_cell(Writer& out, const UnicastCell& cell) {
  out.u64(cell.packet);
  out.i64(cell.arrival);
  out.u64(cell.payload_tag);
}

UnicastCell read_unicast_cell(Reader& in) {
  UnicastCell cell;
  cell.packet = in.u64();
  cell.arrival = in.i64();
  cell.payload_tag = in.u64();
  return cell;
}

void write_output_cell(Writer& out, const OutputCell& cell) {
  out.u64(cell.packet);
  out.i32(cell.input);
  out.i64(cell.arrival);
  out.u64(cell.payload_tag);
}

OutputCell read_output_cell(Reader& in) {
  OutputCell cell;
  cell.packet = in.u64();
  cell.input = in.i32();
  cell.arrival = in.i64();
  cell.payload_tag = in.u64();
  return cell;
}

std::vector<Packet> mc_voq_packets(const McVoqInput& input) {
  // One unserved packet may hold address cells in several VOQs; group the
  // cells by packet id, rebuilding the destination residue output by
  // output.  The arrival stamp and priority are identical across a
  // packet's cells by construction.
  std::unordered_map<PacketId, std::size_t> index;
  std::vector<Packet> packets;
  for (int priority = 0; priority < input.num_classes(); ++priority) {
    for (PortId output : input.occupied()) {
      const RingBuffer<AddressCell>& cells =
          input.address_cells(priority, output);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const AddressCell& cell = cells[i];
        auto [it, inserted] = index.try_emplace(cell.packet, packets.size());
        if (inserted) {
          Packet packet;
          packet.id = cell.packet;
          packet.input = input.port();
          packet.arrival = cell.timestamp;
          packet.priority = priority;
          packets.push_back(packet);
        }
        packets[it->second].destinations.insert(output);
      }
    }
  }
  // Arrivals are unique per input (one arrival per slot), so sorting by
  // arrival is a deterministic canonical order — and the order
  // inject_queue_state() requires.
  std::sort(packets.begin(), packets.end(),
            [](const Packet& a, const Packet& b) { return a.arrival < b.arrival; });
  return packets;
}

void write_mc_voq(Writer& out, const McVoqInput& input) {
  const std::vector<Packet> packets = mc_voq_packets(input);
  out.u64(packets.size());
  for (const Packet& packet : packets) write_packet(out, packet);
}

void read_mc_voq(Reader& in, McVoqInput& input) {
  const std::size_t count = in.length(kMaxContainer);
  std::vector<Packet> packets;
  packets.reserve(count);
  const PortSet valid_outputs = PortSet::all(input.num_outputs());
  SlotTime last_arrival = -1;
  for (std::size_t i = 0; i < count; ++i) {
    Packet packet = read_packet(in);
    if (packet.input != input.port())
      throw SnapshotError("VOQ packet belongs to a different input port");
    if (packet.arrival <= last_arrival)
      throw SnapshotError("VOQ packet arrivals are not strictly increasing");
    if (packet.arrival > kMaxWeightSlot)
      throw SnapshotError("VOQ packet arrival exceeds the weight-slot range");
    if (packet.destinations.empty() ||
        !packet.destinations.is_subset_of(valid_outputs))
      throw SnapshotError("VOQ packet destination set out of range");
    if (packet.priority < 0 || packet.priority >= input.num_classes())
      throw SnapshotError("VOQ packet priority out of range");
    last_arrival = packet.arrival;
    packets.push_back(packet);
  }
  input.inject_queue_state(packets);
}

}  // namespace fifoms::snapshot
