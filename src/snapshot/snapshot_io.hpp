// Checkpoint persistence (docs/RECOVERY.md).
//
// All snapshot bytes reach disk through exactly one function —
// write_file_atomic() — which implements the atomic-write protocol:
// write to `<path>.tmp`, flush, fsync, then rename over the final name.
// A crash (or SIGKILL) at any instant leaves either the previous file
// intact or a `.tmp` orphan; never a half-written checkpoint under the
// real name.  Torn writes that do slip through (e.g. power loss between
// fsync and rename metadata) are caught at read time by the frame's
// length + CRC checks.
//
// CheckpointStore manages a rotating set of `<stem>.<epoch>.ckpt` files
// in one directory: saves are epoch-stamped and pruned to the newest
// few, and load_latest() walks epochs newest-first, skipping torn or
// corrupted files until a frame validates — the "previous good
// checkpoint" fallback the kill-test exercises.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace fifoms::snapshot {

/// Atomically replace `path` with `bytes` (tmp + fsync + rename).
/// Throws SnapshotError on any IO failure.
void write_file_atomic(const std::filesystem::path& path,
                       std::span<const std::uint8_t> bytes);

/// Read a whole file.  Throws SnapshotError if it cannot be opened or
/// read.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);

/// A checkpoint recovered from disk by CheckpointStore::load_latest().
struct LoadedCheckpoint {
  std::uint64_t epoch = 0;
  /// Decoded, CRC-validated payload (owning copy).
  std::vector<std::uint8_t> payload;
  std::filesystem::path path;
  /// Human-readable notes for every newer file that was skipped as
  /// torn/corrupt/mismatched on the way to this one.
  std::vector<std::string> rejected;
};

/// Rotating epoch-stamped checkpoint directory.
class CheckpointStore {
 public:
  /// Creates `dir` if needed.  `keep` newest checkpoints survive each
  /// save; older ones are pruned.
  CheckpointStore(std::filesystem::path dir, std::string stem,
                  std::uint64_t fingerprint, int keep = 2);

  /// Frame and atomically persist `payload` as epoch `epoch`, then
  /// prune.  Epochs must be strictly increasing across saves (monotonic
  /// epoch check — a stale or replayed writer is refused).
  std::filesystem::path save(std::uint64_t epoch,
                             std::span<const std::uint8_t> payload);

  /// Newest checkpoint that validates (magic/version/length/CRC/
  /// fingerprint, and frame epoch matching its filename).  Returns
  /// nullopt when no valid checkpoint exists.
  std::optional<LoadedCheckpoint> load_latest() const;

  /// Epochs currently on disk (by filename), ascending.
  std::vector<std::uint64_t> epochs_on_disk() const;

  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path path_for(std::uint64_t epoch) const;

 private:
  std::filesystem::path dir_;
  std::string stem_;
  std::uint64_t fingerprint_;
  int keep_;
  std::int64_t last_saved_epoch_ = -1;
};

}  // namespace fifoms::snapshot
