#include "snapshot/snapshot.hpp"

#include <array>

namespace fifoms::snapshot {

namespace {

// Frame header: magic(4) version(4) epoch(8) fingerprint(8) length(8)
// crc(4) = 36 bytes, followed by `length` payload bytes.
constexpr std::array<std::uint8_t, 4> kMagic = {'F', 'S', 'N', 'P'};
constexpr std::size_t kHeaderSize = 36;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xffffffffU;
  for (std::uint8_t b : bytes) crc = kCrcTable[(crc ^ b) & 0xffU] ^ (crc >> 8);
  return crc ^ 0xffffffffU;
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (char c : v) bytes_.push_back(static_cast<std::uint8_t>(c));
}

void Writer::port_set(const PortSet& v) {
  for (std::uint64_t word : v.words()) u64(word);
}

std::uint8_t Reader::u8() {
  if (remaining() < 1) throw SnapshotError("snapshot payload truncated (u8)");
  return bytes_[at_++];
}

std::uint32_t Reader::u32() {
  if (remaining() < 4) throw SnapshotError("snapshot payload truncated (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes_[at_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  if (remaining() < 8) throw SnapshotError("snapshot payload truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes_[at_++]) << (8 * i);
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SnapshotError("snapshot boolean out of range");
  return v != 0;
}

std::string Reader::str() {
  const std::uint32_t size = u32();
  if (remaining() < size) throw SnapshotError("snapshot string truncated");
  std::string out(reinterpret_cast<const char*>(bytes_.data() + at_), size);
  at_ += size;
  return out;
}

PortSet Reader::port_set() {
  PortSet set;
  for (int w = 0; w < PortSet::kWords; ++w) set.set_word(w, u64());
  return set;
}

void Reader::expect_end() const {
  if (remaining() != 0)
    throw SnapshotError("snapshot payload has trailing bytes");
}

std::size_t Reader::length(std::size_t limit) {
  const std::uint64_t n = u64();
  if (n > limit) throw SnapshotError("snapshot container length implausible");
  return static_cast<std::size_t>(n);
}

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload,
                                       std::uint64_t epoch,
                                       std::uint64_t fingerprint) {
  Writer header;
  for (std::uint8_t m : kMagic) header.u8(m);
  header.u32(kFormatVersion);
  header.u64(epoch);
  header.u64(fingerprint);
  header.u64(static_cast<std::uint64_t>(payload.size()));
  header.u32(crc32(payload));
  std::vector<std::uint8_t> out = header.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize)
    throw SnapshotError("snapshot frame shorter than its header");
  Reader header(bytes.first(kHeaderSize));
  for (std::uint8_t m : kMagic)
    if (header.u8() != m) throw SnapshotError("snapshot magic mismatch");
  Frame frame;
  frame.version = header.u32();
  if (frame.version != kFormatVersion)
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(frame.version) + " (engine speaks " +
                        std::to_string(kFormatVersion) + ")");
  frame.epoch = header.u64();
  frame.fingerprint = header.u64();
  const std::uint64_t length = header.u64();
  const std::uint32_t expected_crc = header.u32();
  if (bytes.size() - kHeaderSize != length)
    throw SnapshotError("snapshot frame length mismatch (torn file?)");
  frame.payload = bytes.subspan(kHeaderSize);
  if (crc32(frame.payload) != expected_crc)
    throw SnapshotError("snapshot payload CRC mismatch");
  return frame;
}

Frame decode_frame(std::span<const std::uint8_t> bytes,
                   std::uint64_t expected_fingerprint) {
  Frame frame = decode_frame(bytes);
  if (frame.fingerprint != expected_fingerprint)
    throw SnapshotError(
        "snapshot belongs to a differently-configured run "
        "(fingerprint mismatch)");
  return frame;
}

std::uint64_t mix_fingerprint(std::uint64_t acc, std::uint64_t word) {
  std::uint64_t state = acc ^ (word + 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

}  // namespace fifoms::snapshot
