// Shared value codecs for snapshot payloads.
//
// Every model's save_state()/load_state() is built from these helpers so
// the byte layout of a Packet, a queued cell or a statistics accumulator
// is defined once.  Readers validate semantic invariants (port ranges,
// monotonic arrivals, non-empty destination sets) and throw SnapshotError
// before handing data to structures whose own precondition checks panic —
// a corrupted-but-CRC-valid payload must surface as a clean error.
#pragma once

#include "common/rng.hpp"
#include "fabric/hybrid_input.hpp"
#include "fabric/mc_voq_input.hpp"
#include "fabric/output_fifo.hpp"
#include "fabric/packet.hpp"
#include "fabric/single_fifo_input.hpp"
#include "snapshot/snapshot.hpp"
#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/welford.hpp"

namespace fifoms::snapshot {

/// Sanity bound for queue/container lengths inside one payload.
inline constexpr std::size_t kMaxContainer = std::size_t{1} << 26;

void write_rng(Writer& out, const Rng& rng);
void read_rng(Reader& in, Rng& rng);

void write_stat(Writer& out, const RunningStat& stat);
void read_stat(Reader& in, RunningStat& stat);

void write_histogram(Writer& out, const Histogram& hist);
void read_histogram(Reader& in, Histogram& hist);

void write_p2(Writer& out, const P2Quantile& q);
void read_p2(Reader& in, P2Quantile& q);

void write_packet(Writer& out, const Packet& packet);
Packet read_packet(Reader& in);

void write_fifo_cell(Writer& out, const FifoCell& cell);
FifoCell read_fifo_cell(Reader& in);

void write_unicast_cell(Writer& out, const UnicastCell& cell);
UnicastCell read_unicast_cell(Reader& in);

void write_output_cell(Writer& out, const OutputCell& cell);
OutputCell read_output_cell(Reader& in);

/// Reconstruct the unserved-packet list of a multicast VOQ input, sorted
/// by arrival.  Each returned Packet carries the RESIDUE of its original
/// destination set (the outputs whose VOQ still holds one of its address
/// cells); replaying the list through inject_queue_state() reproduces the
/// queue structure, weight planes and global-min carrier exactly.
std::vector<Packet> mc_voq_packets(const McVoqInput& input);

void write_mc_voq(Writer& out, const McVoqInput& input);

/// Validate and inject a saved packet list.  Throws SnapshotError when the
/// payload violates inject_queue_state()'s preconditions (wrong input id,
/// non-increasing arrivals, empty or out-of-range destination sets,
/// out-of-range priority).
void read_mc_voq(Reader& in, McVoqInput& input);

}  // namespace fifoms::snapshot
