// The one file allowed to do raw file IO in src/snapshot/ (lint rule
// no-raw-fwrite-in-snapshot-path): every byte written here goes through
// write_file_atomic's tmp+fsync+rename protocol.
#include "snapshot/snapshot_io.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace fifoms::snapshot {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void throw_io(const std::string& what, const fs::path& path) {
  throw SnapshotError(what + " '" + path.string() +
                      "': " + std::strerror(errno));
}

/// Parse `<stem>.<epoch>.ckpt`; nullopt when `name` is anything else.
std::optional<std::uint64_t> parse_epoch(const std::string& name,
                                         const std::string& stem) {
  const std::string prefix = stem + ".";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

}  // namespace

void write_file_atomic(const fs::path& path,
                       std::span<const std::uint8_t> bytes) {
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* file = std::fopen(tmp.string().c_str(), "wb");
  if (file == nullptr) throw_io("cannot open checkpoint tmp", tmp);
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  if (written != bytes.size() || std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp.string().c_str());
    throw_io("short write to checkpoint tmp", tmp);
  }
#ifndef _WIN32
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp.string().c_str());
    throw_io("fsync of checkpoint tmp failed", tmp);
  }
#endif
  if (std::fclose(file) != 0) {
    std::remove(tmp.string().c_str());
    throw_io("close of checkpoint tmp failed", tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.string().c_str());
    throw SnapshotError("rename of checkpoint tmp to '" + path.string() +
                        "' failed: " + ec.message());
  }
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (file == nullptr) throw_io("cannot open checkpoint", path);
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  for (;;) {
    const std::size_t got = std::fread(chunk.data(), 1, chunk.size(), file);
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
    if (got < chunk.size()) break;
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) throw_io("read of checkpoint failed", path);
  return bytes;
}

CheckpointStore::CheckpointStore(fs::path dir, std::string stem,
                                 std::uint64_t fingerprint, int keep)
    : dir_(std::move(dir)),
      stem_(std::move(stem)),
      fingerprint_(fingerprint),
      keep_(keep < 1 ? 1 : keep) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw SnapshotError("cannot create checkpoint directory '" +
                        dir_.string() + "': " + ec.message());
}

fs::path CheckpointStore::path_for(std::uint64_t epoch) const {
  return dir_ / (stem_ + "." + std::to_string(epoch) + ".ckpt");
}

std::filesystem::path CheckpointStore::save(
    std::uint64_t epoch, std::span<const std::uint8_t> payload) {
  if (static_cast<std::int64_t>(epoch) <= last_saved_epoch_)
    throw SnapshotError("checkpoint epoch " + std::to_string(epoch) +
                        " is not monotonic (last saved " +
                        std::to_string(last_saved_epoch_) + ")");
  const std::vector<std::uint8_t> frame =
      encode_frame(payload, epoch, fingerprint_);
  const fs::path path = path_for(epoch);
  write_file_atomic(path, frame);
  last_saved_epoch_ = static_cast<std::int64_t>(epoch);

  // Prune: keep the newest keep_ checkpoints.
  std::vector<std::uint64_t> epochs = epochs_on_disk();
  if (epochs.size() > static_cast<std::size_t>(keep_)) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(keep_) < epochs.size();
         ++i) {
      std::error_code ec;
      fs::remove(path_for(epochs[i]), ec);  // best-effort
    }
  }
  return path;
}

std::vector<std::uint64_t> CheckpointStore::epochs_on_disk() const {
  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    if (auto epoch = parse_epoch(entry.path().filename().string(), stem_))
      epochs.push_back(*epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::optional<LoadedCheckpoint> CheckpointStore::load_latest() const {
  std::vector<std::uint64_t> epochs = epochs_on_disk();
  std::vector<std::string> rejected;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const fs::path path = path_for(*it);
    try {
      const std::vector<std::uint8_t> bytes = read_file(path);
      const Frame frame = decode_frame(bytes, fingerprint_);
      if (frame.epoch != *it)
        throw SnapshotError("frame epoch " + std::to_string(frame.epoch) +
                            " does not match filename epoch " +
                            std::to_string(*it));
      LoadedCheckpoint loaded;
      loaded.epoch = frame.epoch;
      loaded.payload.assign(frame.payload.begin(), frame.payload.end());
      loaded.path = path;
      loaded.rejected = std::move(rejected);
      return loaded;
    } catch (const SnapshotError& error) {
      rejected.push_back(path.string() + ": " + error.what());
    }
  }
  return std::nullopt;
}

}  // namespace fifoms::snapshot
