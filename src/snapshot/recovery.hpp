// RecoveryRunner: checkpointed execution with automatic resume
// (docs/RECOVERY.md).
//
// Wraps a Simulator's step loop with (1) periodic epoch-stamped
// checkpoints through CheckpointStore's atomic-write protocol, (2) a
// clean-shutdown poll so a SIGTERM'd soak parks a final checkpoint
// before exiting, and (3) bounded crash recovery: when a step or a
// restore throws, the runner backs off exponentially, rewinds to the
// newest checkpoint that validates (torn and corrupted files are
// skipped and reported; a checkpoint that decodes but fails semantic
// validation is deleted so the next attempt falls back to its
// predecessor) and replays forward.  Only when the retry budget is
// exhausted does it quarantine: the error is reported, never rethrown —
// the recovery path degrades, it does not abort.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "snapshot/snapshot_io.hpp"

namespace fifoms::snapshot {

struct RecoveryOptions {
  /// Checkpoint cadence in slots; 0 disables periodic checkpoints.
  SlotTime checkpoint_every = 10'000;
  /// Checkpoint directory (created if needed) and file stem.
  std::string dir = "checkpoints";
  std::string stem = "run";
  /// Newest checkpoints kept on disk (>= 1).
  int keep = 2;
  /// Start from the newest valid checkpoint when one exists; a fresh run
  /// otherwise.  Off = ignore existing checkpoints and start at slot 0.
  bool resume = true;
  /// Recovery restarts allowed after a mid-run failure before the run is
  /// quarantined.
  int max_retries = 2;
  /// First retry backs off this long, doubling per retry (0 = no sleep —
  /// tests and CI want instant retries).
  int backoff_initial_ms = 0;
  /// Polled once per slot; return true to request a clean shutdown (the
  /// runner saves a final checkpoint and returns completed = false).
  std::function<bool()> stop_requested;
  /// Called after every checkpoint save as (epoch, bytes).
  std::function<void(std::uint64_t, std::size_t)> on_checkpoint;
};

struct RecoveryReport {
  /// Valid iff `completed`.
  SimResult result;
  /// The run reached its horizon (or declared instability) and finalised.
  bool completed = false;
  /// A checkpoint was restored at start-up (the --resume path).
  bool resumed = false;
  std::int64_t resumed_from_slot = -1;
  /// Mid-run recovery restarts performed (not counting the initial
  /// resume).
  int restarts = 0;
  std::uint64_t checkpoints_written = 0;
  /// Slot of the newest checkpoint on disk; -1 when none was written.
  std::int64_t last_checkpoint_slot = -1;
  /// Torn/corrupt checkpoint files skipped or deleted across all loads.
  std::vector<std::string> rejected_files;
  /// Retry budget exhausted; `error` holds the final failure.
  bool quarantined = false;
  std::string error;
};

class RecoveryRunner {
 public:
  /// The simulator is borrowed; it must outlive the runner.
  RecoveryRunner(Simulator& simulator, RecoveryOptions options);

  /// Execute the run under checkpoint protection (see file comment).
  RecoveryReport run();

  const CheckpointStore& store() const { return store_; }

 private:
  /// Restore the newest valid checkpoint into the simulator, deleting
  /// semantically-invalid files as it goes.  Returns the restored slot,
  /// or -1 when no checkpoint was usable (the simulator is then freshly
  /// prepared).
  std::int64_t restore_latest(RecoveryReport& report);

  Simulator& simulator_;
  RecoveryOptions options_;
  CheckpointStore store_;
};

}  // namespace fifoms::snapshot
