#include "snapshot/bundle.hpp"

#include <system_error>

#include "snapshot/snapshot.hpp"
#include "snapshot/snapshot_io.hpp"

namespace fifoms::snapshot {

namespace {

std::vector<std::uint8_t> to_bytes(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::string to_text(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

std::string ReplayBundle::value_or(const std::string& key,
                                   std::string fallback) const {
  for (const auto& [k, v] : manifest)
    if (k == key) return v;
  return fallback;
}

void write_bundle(const std::filesystem::path& dir,
                  const ReplayBundle& bundle) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw SnapshotError("cannot create bundle directory " + dir.string() +
                        ": " + ec.message());
  std::string manifest;
  for (const auto& [key, value] : bundle.manifest) {
    if (key.find('=') != std::string::npos ||
        key.find('\n') != std::string::npos ||
        value.find('\n') != std::string::npos)
      throw SnapshotError("bundle manifest key/value contains '=' or newline");
    manifest += key;
    manifest += '=';
    manifest += value;
    manifest += '\n';
  }
  write_file_atomic(dir / "manifest.txt", to_bytes(manifest));
  if (!bundle.checkpoint.empty())
    write_file_atomic(dir / "checkpoint.ckpt", bundle.checkpoint);
  std::string trace;
  for (const std::string& line : bundle.trace) {
    trace += line;
    trace += '\n';
  }
  write_file_atomic(dir / "trace.txt", to_bytes(trace));
}

ReplayBundle read_bundle(const std::filesystem::path& dir) {
  ReplayBundle bundle;
  const std::string manifest = to_text(read_file(dir / "manifest.txt"));
  std::size_t start = 0;
  while (start < manifest.size()) {
    std::size_t end = manifest.find('\n', start);
    if (end == std::string::npos) end = manifest.size();
    const std::string line = manifest.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw SnapshotError("bundle manifest line without '=': " + line);
    bundle.manifest.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  if (std::filesystem::exists(dir / "checkpoint.ckpt"))
    bundle.checkpoint = read_file(dir / "checkpoint.ckpt");
  if (std::filesystem::exists(dir / "trace.txt")) {
    const std::string trace = to_text(read_file(dir / "trace.txt"));
    start = 0;
    while (start < trace.size()) {
      std::size_t end = trace.find('\n', start);
      if (end == std::string::npos) end = trace.size();
      if (end > start) bundle.trace.push_back(trace.substr(start, end - start));
      start = end + 1;
    }
  }
  return bundle;
}

}  // namespace fifoms::snapshot
