// MetricsCollector: turns per-slot events into the paper's statistics.
//
//   * average input-oriented delay  — per packet, slot its LAST copy was
//     delivered minus its arrival slot (sender's view);
//   * average output-oriented delay — per copy, delivery slot minus
//     arrival slot (receiver's view);
//   * average queue size — per-slot mean over ports of the architecture's
//     occupancy metric, sampled at end of slot;
//   * maximum queue size — maximum over the run and over ports.
//
// Warm-up handling follows the paper: delay statistics only include
// packets that *arrive* at or after the warm-up boundary; queue sizes and
// convergence rounds are sampled in slots at or after the boundary.
// Delay is measured in whole slots: a copy delivered in its arrival slot
// has delay 0.
#pragma once

#include <unordered_map>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/welford.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class MetricsCollector {
 public:
  /// `warmup_end`: first slot of the measured interval.
  MetricsCollector(SlotTime warmup_end, int occupancy_ports);

  void on_inject(const Packet& packet);
  void on_slot_end(const SwitchModel& sw, const SlotResult& result,
                   SlotTime now);

  const RunningStat& input_delay() const { return input_delay_; }
  const RunningStat& output_delay() const { return output_delay_; }
  const RunningStat& queue_mean() const { return queue_mean_; }
  std::size_t queue_max() const { return queue_max_; }

  /// Convergence rounds averaged over all measured slots / only slots with
  /// at least one transmitted copy (the figure-5 statistic).
  const RunningStat& rounds_all() const { return rounds_all_; }
  const RunningStat& rounds_busy() const { return rounds_busy_; }
  const Histogram& rounds_histogram() const { return rounds_hist_; }

  const P2Quantile& output_delay_p99() const { return output_delay_p99_; }

  /// Output-oriented delay of one QoS class (empty stat for unseen
  /// classes).  Index = Packet::priority.
  const RunningStat& class_output_delay(int priority) const;
  int observed_classes() const {
    return static_cast<int>(class_output_delay_.size());
  }

  std::uint64_t packets_offered() const { return packets_offered_; }
  std::uint64_t copies_offered() const { return copies_offered_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t copies_delivered() const { return copies_delivered_; }
  /// Copies purged at a failed output (StrandedCellPolicy::kPurge).
  std::uint64_t copies_purged() const { return copies_purged_; }

  /// Copies delivered per output per measured slot (1.0 = line rate).
  double throughput(int num_outputs) const;

  /// Packets injected but not yet fully delivered (conservation check).
  std::size_t in_flight() const { return pending_.size(); }

  SlotTime measured_slots() const { return measured_slots_; }

  /// Full accumulator state for snapshot/restore; the pending map is
  /// serialised sorted by packet id (canonical form).
  void save_state(snapshot::Writer& out) const;
  void load_state(snapshot::Reader& in);

 private:
  struct Pending {
    SlotTime arrival = 0;
    int remaining = 0;
    int priority = 0;
  };

  SlotTime warmup_end_;
  int occupancy_ports_;

  std::unordered_map<PacketId, Pending> pending_;

  RunningStat input_delay_;
  RunningStat output_delay_;
  std::vector<RunningStat> class_output_delay_;
  RunningStat queue_mean_;
  std::size_t queue_max_ = 0;
  RunningStat rounds_all_;
  RunningStat rounds_busy_;
  Histogram rounds_hist_;
  P2Quantile output_delay_p99_{0.99};

  std::uint64_t packets_offered_ = 0;
  std::uint64_t copies_offered_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t copies_delivered_ = 0;
  std::uint64_t copies_purged_ = 0;
  std::uint64_t measured_copies_ = 0;
  SlotTime measured_slots_ = 0;
};

}  // namespace fifoms
