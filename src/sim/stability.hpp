// StabilityMonitor: detects when a switch "reaches a stage where it is
// unable to sustain the offered load" (paper Section V).
//
// Two signals, both conservative:
//   * hard backlog bound — total buffered entities exceed a threshold
//     (an unstable queue grows linearly, so any generous bound is hit
//     quickly once the load exceeds the scheduler's capacity region);
//   * sustained growth — backlog sampled once per window keeps making new
//     highs for `growth_windows` consecutive windows while already above
//     a floor, which catches slow divergence below the hard bound.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

struct StabilityConfig {
  /// Hard bound on SwitchModel::total_buffered(); 0 disables.
  std::size_t max_buffered = 50'000;
  /// Backlog sampling window in slots.
  SlotTime window = 2'000;
  /// Consecutive windows of monotone growth (above `growth_floor`) that
  /// count as divergence; 0 disables the growth detector.
  int growth_windows = 8;
  std::size_t growth_floor = 1'000;
};

class StabilityMonitor {
 public:
  explicit StabilityMonitor(StabilityConfig config = {}) : config_(config) {}

  /// Call once per slot after step(); returns true once instability is
  /// declared (sticky thereafter).
  bool check(const SwitchModel& sw, SlotTime now);

  bool unstable() const { return unstable_; }
  SlotTime unstable_at() const { return unstable_at_; }

  void reset();

  void save_state(snapshot::Writer& out) const;
  void load_state(snapshot::Reader& in);

 private:
  StabilityConfig config_;
  bool unstable_ = false;
  SlotTime unstable_at_ = -1;
  std::size_t last_window_peak_ = 0;
  int growth_streak_ = 0;
};

}  // namespace fifoms
