#include "sim/observer.hpp"

namespace fifoms {

void TextTracer::on_slot(SlotTime now, const SwitchModel& sw,
                         const SlotResult& result) {
  if (now < options_.first_slot || now > options_.last_slot) return;
  if (result.deliveries.empty() && !options_.include_idle) return;

  out_ << "slot " << now << " |";
  if (result.deliveries.empty()) {
    out_ << " idle";
  } else {
    for (const Delivery& d : result.deliveries)
      out_ << ' ' << d.input << "->" << d.output;
  }
  out_ << " | rounds=" << result.rounds
       << " copies=" << result.deliveries.size()
       << " buffered=" << sw.total_buffered() << '\n';
  ++lines_;
}

}  // namespace fifoms
