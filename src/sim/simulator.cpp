#include "sim/simulator.hpp"

#include <chrono>
#include <optional>

namespace fifoms {

namespace {

/// Detaches the switch's fault-state pointer on every exit path (normal
/// return, instability break, SimTimeout, observer exception).
struct FaultAttachment {
  SwitchModel* sw = nullptr;
  ~FaultAttachment() {
    if (sw != nullptr) sw->set_fault_state(nullptr);
  }
};

}  // namespace

Simulator::Simulator(SwitchModel& sw, TrafficModel& traffic, SimConfig config)
    : switch_(sw), traffic_(traffic), config_(config) {
  FIFOMS_ASSERT(sw.num_inputs() == traffic.num_ports(),
                "switch and traffic model disagree on port count");
  FIFOMS_ASSERT(config.total_slots > 0, "empty simulation horizon");
  FIFOMS_ASSERT(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
                "warm-up fraction out of [0, 1)");
}

SimResult Simulator::run() {
  const auto warmup_end = static_cast<SlotTime>(
      static_cast<double>(config_.total_slots) * config_.warmup_fraction);

  // Independent streams: scheduler randomness must not perturb arrivals.
  Rng traffic_rng(derive_seed(config_.seed, /*stream=*/1, 0));
  Rng sched_rng(derive_seed(config_.seed, /*stream=*/2, 0));

  traffic_.reset(traffic_rng);
  MetricsCollector metrics(warmup_end, switch_.occupancy_ports());
  StabilityMonitor stability(config_.stability);

  // Fault plumbing: advance the plan cursor at the top of every slot and
  // let the switch model see the level view while it schedules.
  std::optional<fault::FaultState> faults;
  FaultAttachment attachment;
  if (config_.fault_plan != nullptr && !config_.fault_plan->empty()) {
    FIFOMS_ASSERT(config_.fault_plan->num_ports() == switch_.num_inputs(),
                  "fault plan and switch disagree on port count");
    faults.emplace(*config_.fault_plan);
    switch_.set_fault_state(&*faults);
    attachment.sw = &switch_;
  }
  std::uint64_t packets_suppressed = 0;
  std::uint64_t fault_events_applied = 0;

  const auto wall_start = std::chrono::steady_clock::now();
  constexpr SlotTime kWallCheckPeriod = 512;

  const int num_inputs = switch_.num_inputs();
  SlotResult slot_result;
  SlotTime now = 0;
  for (; now < config_.total_slots; ++now) {
    if (faults) {
      const auto applied = faults->advance(now);
      fault_events_applied += applied.size();
      if (observer_ != nullptr) {
        for (const fault::FaultEvent& event : applied)
          observer_->on_fault_event(now, switch_, event);
      }
    }

    for (PortId input = 0; input < num_inputs; ++input) {
      // Always draw, even for a failed line card: the arrival stream must
      // stay bit-identical to the fault-free twin of this run.
      const PortSet destinations = traffic_.arrival(input, now, traffic_rng);
      if (destinations.empty()) continue;
      if (faults && faults->failed_inputs().contains(input)) {
        ++packets_suppressed;
        continue;  // lost at the dead line card, never enters the fabric
      }
      const Packet packet{
          .id = next_packet_id_++,
          .input = input,
          .arrival = now,
          .destinations = destinations,
          .priority = traffic_.last_priority(),
      };
      if (!switch_.inject(packet)) continue;  // dropped at a full buffer
      metrics.on_inject(packet);
      if (observer_ != nullptr) observer_->on_inject(switch_, packet);
    }

    slot_result.clear();
    switch_.step(now, sched_rng, slot_result);
    metrics.on_slot_end(switch_, slot_result, now);
    if (observer_ != nullptr) observer_->on_slot(now, switch_, slot_result);

    if (stability.check(switch_, now)) break;

    if (config_.wall_limit_ms > 0 && now % kWallCheckPeriod == 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - wall_start);
      if (elapsed.count() > config_.wall_limit_ms) {
        throw SimTimeout("simulation exceeded wall-clock limit of " +
                         std::to_string(config_.wall_limit_ms) + " ms at slot " +
                         std::to_string(now));
      }
    }
  }
  // On an instability break the for-increment did not run: slot `now` was
  // still fully executed, so the executed-slot count is now + 1.
  const SlotTime executed_slots = stability.unstable() ? now + 1 : now;

  SimResult result;
  result.algorithm = std::string(switch_.name());
  result.traffic = std::string(traffic_.name());
  result.offered_load = traffic_.offered_load();
  result.total_slots = executed_slots;
  result.warmup_end = warmup_end;
  result.unstable = stability.unstable();
  result.unstable_at = stability.unstable_at();
  result.input_delay = metrics.input_delay();
  result.output_delay = metrics.output_delay();
  result.output_delay_p99 = metrics.output_delay_p99().value();
  for (int cls = 0; cls < metrics.observed_classes(); ++cls)
    result.class_output_delays.push_back(metrics.class_output_delay(cls));
  result.queue_mean = metrics.queue_mean();
  result.queue_max = metrics.queue_max();
  result.rounds_all = metrics.rounds_all();
  result.rounds_busy = metrics.rounds_busy();
  result.rounds_hist = metrics.rounds_histogram();
  result.packets_offered = metrics.packets_offered();
  result.packets_delivered = metrics.packets_delivered();
  result.packets_dropped = switch_.dropped_packets();
  result.packets_suppressed = packets_suppressed;
  result.fault_events_applied = fault_events_applied;
  result.copies_offered = metrics.copies_offered();
  result.copies_delivered = metrics.copies_delivered();
  result.copies_purged = metrics.copies_purged();
  result.in_flight_at_end = metrics.in_flight();
  result.throughput = metrics.throughput(switch_.num_outputs());
  if (result.unstable && executed_slots > 0) {
    // A diverging run may end before the warm-up boundary; report the
    // whole-run delivery ratio — the scheduler's saturation throughput.
    result.throughput = static_cast<double>(result.copies_delivered) /
                        (static_cast<double>(executed_slots) *
                         static_cast<double>(switch_.num_outputs()));
  }
  return result;
}

}  // namespace fifoms
