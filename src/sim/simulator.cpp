#include "sim/simulator.hpp"

#include <bit>

#include "snapshot/snapshot.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

namespace {
constexpr SlotTime kWallCheckPeriod = 512;
}  // namespace

Simulator::Simulator(SwitchModel& sw, TrafficModel& traffic, SimConfig config)
    : switch_(sw),
      traffic_(traffic),
      config_(config),
      traffic_rng_(derive_seed(config.seed, /*stream=*/1, 0)),
      sched_rng_(derive_seed(config.seed, /*stream=*/2, 0)),
      stability_(config.stability) {
  FIFOMS_ASSERT(sw.num_inputs() == traffic.num_ports(),
                "switch and traffic model disagree on port count");
  FIFOMS_ASSERT(config.total_slots > 0, "empty simulation horizon");
  FIFOMS_ASSERT(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
                "warm-up fraction out of [0, 1)");
}

Simulator::~Simulator() { detach_faults(); }

void Simulator::detach_faults() {
  if (faults_attached_) {
    switch_.set_fault_state(nullptr);
    faults_attached_ = false;
  }
  faults_.reset();
}

void Simulator::prepare() {
  detach_faults();
  warmup_end_ = static_cast<SlotTime>(
      static_cast<double>(config_.total_slots) * config_.warmup_fraction);

  // Independent streams: scheduler randomness must not perturb arrivals.
  traffic_rng_ = Rng(derive_seed(config_.seed, /*stream=*/1, 0));
  sched_rng_ = Rng(derive_seed(config_.seed, /*stream=*/2, 0));

  traffic_.reset(traffic_rng_);
  metrics_.emplace(warmup_end_, switch_.occupancy_ports());
  stability_ = StabilityMonitor(config_.stability);

  // Fault plumbing: advance the plan cursor at the top of every slot and
  // let the switch model see the level view while it schedules.
  if (config_.fault_plan != nullptr && !config_.fault_plan->empty()) {
    FIFOMS_ASSERT(config_.fault_plan->num_ports() == switch_.num_inputs(),
                  "fault plan and switch disagree on port count");
    faults_.emplace(*config_.fault_plan);
    switch_.set_fault_state(&*faults_);
    faults_attached_ = true;
  }

  next_packet_id_ = 0;
  now_ = 0;
  packets_suppressed_ = 0;
  fault_events_applied_ = 0;
  wall_start_ = std::chrono::steady_clock::now();
  prepared_ = true;
}

void Simulator::restart() {
  switch_.clear();
  prepare();
}

bool Simulator::done() const {
  return prepared_ && (now_ >= config_.total_slots || stability_.unstable());
}

void Simulator::step() {
  FIFOMS_ASSERT(prepared_, "step() before prepare()");
  FIFOMS_ASSERT(!done(), "step() past the end of the run");
  const SlotTime now = now_;

  if (faults_) {
    const auto applied = faults_->advance(now);
    fault_events_applied_ += applied.size();
    if (observer_ != nullptr) {
      for (const fault::FaultEvent& event : applied)
        observer_->on_fault_event(now, switch_, event);
    }
  }

  const int num_inputs = switch_.num_inputs();
  for (PortId input = 0; input < num_inputs; ++input) {
    // Always draw, even for a failed line card: the arrival stream must
    // stay bit-identical to the fault-free twin of this run.
    const PortSet destinations = traffic_.arrival(input, now, traffic_rng_);
    if (destinations.empty()) continue;
    if (faults_ && faults_->failed_inputs().contains(input)) {
      ++packets_suppressed_;
      continue;  // lost at the dead line card, never enters the fabric
    }
    const Packet packet{
        .id = next_packet_id_++,
        .input = input,
        .arrival = now,
        .destinations = destinations,
        .priority = traffic_.last_priority(),
    };
    if (!switch_.inject(packet)) continue;  // dropped at a full buffer
    metrics_->on_inject(packet);
    if (observer_ != nullptr) observer_->on_inject(switch_, packet);
  }

  slot_result_.clear();
  switch_.step(now, sched_rng_, slot_result_);
  metrics_->on_slot_end(switch_, slot_result_, now);
  if (observer_ != nullptr) observer_->on_slot(now, switch_, slot_result_);

  stability_.check(switch_, now);  // sticky; done() reads unstable()
  ++now_;
}

SimResult Simulator::report() const {
  // now_ counts fully executed slots on every exit path: on an
  // instability break the breaking slot still ran to completion.
  const SlotTime executed_slots = now_;
  const MetricsCollector& metrics = *metrics_;

  SimResult result;
  result.algorithm = std::string(switch_.name());
  result.traffic = std::string(traffic_.name());
  result.offered_load = traffic_.offered_load();
  result.total_slots = executed_slots;
  result.warmup_end = warmup_end_;
  result.unstable = stability_.unstable();
  result.unstable_at = stability_.unstable_at();
  result.input_delay = metrics.input_delay();
  result.output_delay = metrics.output_delay();
  result.output_delay_p99 = metrics.output_delay_p99().value();
  for (int cls = 0; cls < metrics.observed_classes(); ++cls)
    result.class_output_delays.push_back(metrics.class_output_delay(cls));
  result.queue_mean = metrics.queue_mean();
  result.queue_max = metrics.queue_max();
  result.rounds_all = metrics.rounds_all();
  result.rounds_busy = metrics.rounds_busy();
  result.rounds_hist = metrics.rounds_histogram();
  result.packets_offered = metrics.packets_offered();
  result.packets_delivered = metrics.packets_delivered();
  result.packets_dropped = switch_.dropped_packets();
  result.packets_suppressed = packets_suppressed_;
  result.fault_events_applied = fault_events_applied_;
  result.copies_offered = metrics.copies_offered();
  result.copies_delivered = metrics.copies_delivered();
  result.copies_purged = metrics.copies_purged();
  result.in_flight_at_end = metrics.in_flight();
  result.throughput = metrics.throughput(switch_.num_outputs());
  if (result.unstable && executed_slots > 0) {
    // A diverging run may end before the warm-up boundary; report the
    // whole-run delivery ratio — the scheduler's saturation throughput.
    result.throughput = static_cast<double>(result.copies_delivered) /
                        (static_cast<double>(executed_slots) *
                         static_cast<double>(switch_.num_outputs()));
  }
  return result;
}

SimResult Simulator::finalize() {
  FIFOMS_ASSERT(prepared_, "finalize() before prepare()");
  SimResult result = report();
  detach_faults();
  return result;
}

SimResult Simulator::run() {
  prepare();
  while (!done()) {
    const SlotTime slot = now_;
    step();
    if (config_.wall_limit_ms > 0 && slot % kWallCheckPeriod == 0 &&
        !stability_.unstable()) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - wall_start_);
      if (elapsed.count() > config_.wall_limit_ms) {
        auto partial = std::make_shared<SimResult>(report());
        partial->truncated = true;
        detach_faults();
        throw SimTimeout("simulation exceeded wall-clock limit of " +
                             std::to_string(config_.wall_limit_ms) +
                             " ms at slot " + std::to_string(slot),
                         std::move(partial));
      }
    }
  }
  return finalize();
}

std::uint64_t Simulator::state_fingerprint() const {
  using snapshot::mix_fingerprint;
  std::uint64_t acc = 0x46534e50;  // "FSNP"
  acc = mix_fingerprint(acc, config_.seed);
  acc = mix_fingerprint(acc, static_cast<std::uint64_t>(config_.total_slots));
  acc = mix_fingerprint(acc,
                        std::bit_cast<std::uint64_t>(config_.warmup_fraction));
  acc = mix_fingerprint(acc, static_cast<std::uint64_t>(switch_.num_inputs()));
  acc = mix_fingerprint(acc, static_cast<std::uint64_t>(switch_.num_outputs()));
  for (char c : switch_.name())
    acc = mix_fingerprint(acc, static_cast<unsigned char>(c));
  for (char c : traffic_.name())
    acc = mix_fingerprint(acc, static_cast<unsigned char>(c));
  const bool has_plan =
      config_.fault_plan != nullptr && !config_.fault_plan->empty();
  acc = mix_fingerprint(acc, has_plan ? 1 : 0);
  if (has_plan)
    acc = mix_fingerprint(
        acc, static_cast<std::uint64_t>(config_.fault_plan->num_ports()));
  return acc;
}

void Simulator::save_state(snapshot::Writer& out) const {
  FIFOMS_ASSERT(prepared_, "save_state() before prepare()");
  out.u64(next_packet_id_);
  out.i64(now_);
  out.u64(packets_suppressed_);
  out.u64(fault_events_applied_);
  snapshot::write_rng(out, traffic_rng_);
  snapshot::write_rng(out, sched_rng_);
  metrics_->save_state(out);
  stability_.save_state(out);
  out.boolean(observer_ != nullptr);
  if (observer_ != nullptr) observer_->save_state(out);
  traffic_.save_state(out);
  switch_.save_state(out);
}

void Simulator::load_state(snapshot::Reader& in) {
  prepare();  // clean baseline: fresh RNGs, reset models, fault cursor 0
  next_packet_id_ = in.u64();
  now_ = in.i64();
  if (now_ < 0 || now_ > config_.total_slots)
    throw snapshot::SnapshotError("checkpoint slot out of range");
  packets_suppressed_ = in.u64();
  fault_events_applied_ = in.u64();
  snapshot::read_rng(in, traffic_rng_);
  snapshot::read_rng(in, sched_rng_);
  metrics_->load_state(in);
  stability_.load_state(in);
  const bool has_observer = in.boolean();
  if (has_observer != (observer_ != nullptr))
    throw snapshot::SnapshotError("checkpoint observer presence mismatch");
  if (observer_ != nullptr) observer_->load_state(in);
  traffic_.load_state(in);
  switch_.clear();
  switch_.load_state(in);
  // Replay the fault plan up to the restored slot boundary, silently: the
  // uninterrupted run already reported these events to the observer, and
  // the counter above was restored from the payload.
  if (faults_ && now_ > 0) (void)faults_->advance(now_ - 1);
}

}  // namespace fifoms
