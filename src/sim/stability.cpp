#include "sim/stability.hpp"

namespace fifoms {

bool StabilityMonitor::check(const SwitchModel& sw, SlotTime now) {
  if (unstable_) return true;

  const std::size_t buffered = sw.total_buffered();
  if (config_.max_buffered > 0 && buffered > config_.max_buffered) {
    unstable_ = true;
    unstable_at_ = now;
    return true;
  }

  if (config_.growth_windows > 0 && config_.window > 0 &&
      now > 0 && now % config_.window == 0) {
    if (buffered > last_window_peak_ && buffered > config_.growth_floor) {
      if (++growth_streak_ >= config_.growth_windows) {
        unstable_ = true;
        unstable_at_ = now;
        return true;
      }
    } else {
      growth_streak_ = 0;
    }
    last_window_peak_ = buffered;
  }
  return false;
}

void StabilityMonitor::reset() {
  unstable_ = false;
  unstable_at_ = -1;
  last_window_peak_ = 0;
  growth_streak_ = 0;
}

}  // namespace fifoms
