#include "sim/stability.hpp"

#include "snapshot/snapshot.hpp"

namespace fifoms {

bool StabilityMonitor::check(const SwitchModel& sw, SlotTime now) {
  if (unstable_) return true;

  const std::size_t buffered = sw.total_buffered();
  if (config_.max_buffered > 0 && buffered > config_.max_buffered) {
    unstable_ = true;
    unstable_at_ = now;
    return true;
  }

  if (config_.growth_windows > 0 && config_.window > 0 &&
      now > 0 && now % config_.window == 0) {
    if (buffered > last_window_peak_ && buffered > config_.growth_floor) {
      if (++growth_streak_ >= config_.growth_windows) {
        unstable_ = true;
        unstable_at_ = now;
        return true;
      }
    } else {
      growth_streak_ = 0;
    }
    last_window_peak_ = buffered;
  }
  return false;
}

void StabilityMonitor::reset() {
  unstable_ = false;
  unstable_at_ = -1;
  last_window_peak_ = 0;
  growth_streak_ = 0;
}

void StabilityMonitor::save_state(snapshot::Writer& out) const {
  out.boolean(unstable_);
  out.i64(unstable_at_);
  out.u64(last_window_peak_);
  out.i32(growth_streak_);
}

void StabilityMonitor::load_state(snapshot::Reader& in) {
  unstable_ = in.boolean();
  unstable_at_ = in.i64();
  last_window_peak_ = in.u64();
  growth_streak_ = in.i32();
}

}  // namespace fifoms
