#include "sim/oq_switch.hpp"

#include "common/panic.hpp"
#include "fault/fault.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

OqSwitch::OqSwitch(int num_ports) : num_ports_(num_ports) {
  FIFOMS_ASSERT(num_ports > 0 && num_ports <= kMaxPorts,
                "unsupported port count");
  outputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port) outputs_.emplace_back(port);
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
}

bool OqSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;

  // N-speedup: all copies reach their output queues in the arrival slot.
  const OutputCell cell{
      .packet = packet.id,
      .input = packet.input,
      .arrival = packet.arrival,
      .payload_tag = packet.payload_tag(),
  };
  for (PortId output : packet.destinations) {
    FIFOMS_ASSERT(output < num_ports_, "destination beyond switch radix");
    outputs_[static_cast<std::size_t>(output)].push(cell);
  }
  return true;  // the idealised OQ switch has unlimited output buffers
}

void OqSwitch::step(SlotTime /*now*/, Rng& /*rng*/, SlotResult& result) {
  // Fault degradation: a failed output's line stops transmitting; its
  // queue holds (and keeps growing) until the port recovers.
  const bool faulted = faults_ != nullptr && faults_->active();
  for (PortId output = 0; output < num_ports_; ++output) {
    if (faulted && faults_->failed_outputs().contains(output)) continue;
    OutputFifo& queue = outputs_[static_cast<std::size_t>(output)];
    if (queue.empty()) continue;
    const OutputCell cell = queue.pop();
    result.deliveries.push_back(Delivery{
        .packet = cell.packet,
        .input = cell.input,
        .output = output,
        .arrival = cell.arrival,
        .payload_tag = cell.payload_tag,
    });
    ++result.matched_pairs;
  }
  result.rounds = 0;  // no iterative scheduler
}

std::size_t OqSwitch::occupancy(PortId port) const {
  return output(port).size();
}

std::size_t OqSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& queue : outputs_) total += queue.size();
  return total;
}

void OqSwitch::clear() {
  for (auto& queue : outputs_) queue.clear();
  for (auto& slot : last_arrival_slot_) slot = -1;
}

const OutputFifo& OqSwitch::output(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "output out of range");
  return outputs_[static_cast<std::size_t>(port)];
}


void OqSwitch::save_state(snapshot::Writer& out) const {
  for (SlotTime slot : last_arrival_slot_) out.i64(slot);
  for (const OutputFifo& port : outputs_) {
    const std::vector<OutputCell> cells = port.cells();
    out.u64(cells.size());
    for (const OutputCell& cell : cells) snapshot::write_output_cell(out, cell);
  }
}

void OqSwitch::load_state(snapshot::Reader& in) {
  for (SlotTime& slot : last_arrival_slot_) slot = in.i64();
  for (OutputFifo& port : outputs_) {
    port.clear();
    const std::size_t count = in.length(snapshot::kMaxContainer);
    for (std::size_t i = 0; i < count; ++i)
      port.push(snapshot::read_output_cell(in));
  }
}

}  // namespace fifoms
