// SwitchModel: the common surface of the three buffering architectures
// (multicast VOQ, single input-queued, output queued).
//
// The simulator drives a model through two calls per slot: inject() for
// each arriving packet, then step() to schedule, transmit and post-process
// (paper Table 2).  Deliveries are reported per copy so the metrics layer
// can compute both output-oriented delay (per copy) and input-oriented
// delay (per packet, when its last copy lands).
#pragma once

#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fabric/packet.hpp"

namespace fifoms {

namespace fault {
class FaultState;
}  // namespace fault

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

/// One copy of a packet crossing the fabric to one output.
struct Delivery {
  PacketId packet = kNoPacket;
  PortId input = kNoPort;
  PortId output = kNoPort;
  SlotTime arrival = 0;  ///< arrival slot of the packet (for delay calc)
  std::uint64_t payload_tag = 0;
};

struct SlotResult {
  std::vector<Delivery> deliveries;
  /// Copies discarded by a purge degradation policy (stranded at a failed
  /// output), reported like deliveries so the auditor can keep its
  /// conservation ledger exact.  Empty without fault injection.
  std::vector<Delivery> purged;
  int rounds = 0;         ///< scheduler iterations this slot
  int matched_pairs = 0;  ///< copies transmitted this slot

  void clear() {
    deliveries.clear();
    purged.clear();
    rounds = 0;
    matched_pairs = 0;
  }
};

class SwitchModel {
 public:
  virtual ~SwitchModel() = default;

  virtual std::string_view name() const = 0;
  virtual int num_inputs() const = 0;
  virtual int num_outputs() const = 0;

  /// Accept a packet arriving in the current slot.  At most one packet per
  /// input per slot (the paper's synchronous model); violations panic.
  /// Returns false when the packet was dropped because the input buffer is
  /// full (finite-buffer configurations only; the default is unlimited).
  virtual bool inject(const Packet& packet) = 0;

  /// Packets refused by inject() so far (0 for unlimited buffers).
  virtual std::uint64_t dropped_packets() const { return 0; }

  /// Run one slot: schedule, transmit, post-process.  Appends one Delivery
  /// per transmitted copy to `result.deliveries`.
  virtual void step(SlotTime now, Rng& rng, SlotResult& result) = 0;

  /// The paper's queue-size metric for this architecture, per port:
  /// buffered data cells (VOQ switch), queued packets (single-FIFO switch)
  /// or queued cells (OQ switch).
  virtual std::size_t occupancy(PortId port) const = 0;

  /// Number of ports occupancy() ranges over.
  virtual int occupancy_ports() const = 0;

  /// Total buffered entities — the stability monitor's divergence signal.
  virtual std::size_t total_buffered() const = 0;

  /// Drop all queued state (reset between runs).
  virtual void clear() = 0;

  /// Attach (or detach, with nullptr) the fault view.  Models that
  /// support degradation consult it every step(); the default ignores
  /// faults entirely (a perfect fabric).
  virtual void set_fault_state(const fault::FaultState* faults) {
    (void)faults;
  }

  /// Serialise all mutable state into `out` such that load_state() on an
  /// equally-configured, cleared instance reproduces it exactly —
  /// subsequent step() calls must be bit-identical to never having
  /// saved.  Defaults are no-ops (a stateless model saves nothing);
  /// every concrete model with cross-slot state overrides both.
  /// load_state() throws snapshot::SnapshotError on malformed bytes.
  virtual void save_state(snapshot::Writer& out) const { (void)out; }
  virtual void load_state(snapshot::Reader& in) { (void)in; }
};

}  // namespace fifoms
