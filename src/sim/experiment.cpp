#include "sim/experiment.hpp"

#include <cstdio>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "core/fifoms.hpp"
#include "hw/fifoms_control_unit.hpp"
#include "sched/concentrate.hpp"
#include "sched/eslip.hpp"
#include "sched/drr2d.hpp"
#include "sched/ilqf.hpp"
#include "sched/islip.hpp"
#include "sched/pim.hpp"
#include "sched/tatra.hpp"
#include "sched/wba.hpp"
#include "sim/cioq_switch.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"

namespace fifoms {

namespace {

/// Pool one (algorithm, load) point from its replications.  `failed[i]`
/// marks quarantined replications; they contribute to no statistic.
PointSummary summarise(const std::string& algorithm, double load,
                       const std::vector<SimResult>& runs,
                       const std::vector<char>& failed) {
  PointSummary point;
  point.algorithm = algorithm;
  point.load = load;
  point.replications = static_cast<int>(runs.size());

  RunningStat in_delay, out_delay, out_p99, q_mean, q_max, r_busy, r_all, thr;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SimResult& run = runs[i];
    if (failed[i] && !run.truncated) {
      ++point.failed_count;
      continue;  // quarantined cell: its SimResult is a default object
    }
    if (failed[i])
      ++point.truncated_count;  // watchdog partial: completed slots count
    if (run.unstable) {
      ++point.unstable_count;
      continue;  // delay numbers of a diverging run are meaningless
    }
    in_delay.add(run.input_delay.mean());
    out_delay.add(run.output_delay.mean());
    out_p99.add(run.output_delay_p99);
    q_mean.add(run.queue_mean.mean());
    q_max.add(static_cast<double>(run.queue_max));
    r_busy.add(run.rounds_busy.mean());
    r_all.add(run.rounds_all.mean());
    thr.add(run.throughput);
  }
  if (in_delay.empty()) {
    // Every replication diverged: report throughput anyway (it saturates
    // at the capacity of the scheduler), leave delays at zero.
    for (std::size_t i = 0; i < runs.size(); ++i)
      if (!failed[i] || runs[i].truncated) thr.add(runs[i].throughput);
  }
  point.input_delay = in_delay.mean();
  point.output_delay = out_delay.mean();
  point.output_delay_p99 = out_p99.mean();
  point.queue_mean = q_mean.mean();
  point.queue_max = q_max.mean();
  point.rounds_busy = r_busy.mean();
  point.rounds_all = r_all.mean();
  point.throughput = thr.mean();
  point.input_delay_se = in_delay.stderr_mean();
  point.output_delay_se = out_delay.stderr_mean();
  return point;
}

/// Live progress aggregation for verbose sweeps — the only state in
/// run_sweep that several workers write: a finished-cell counter behind
/// an annotated Mutex (compile-time checked by the thread-safety lane).
/// Everything else the workers touch is lock-free by partition; see the
/// comment at the results/cell_outcomes declarations below.
struct SweepProgress {
  Mutex mutex;
  std::size_t done FIFOMS_GUARDED_BY(mutex) = 0;
  std::size_t quarantined FIFOMS_GUARDED_BY(mutex) = 0;
};

}  // namespace

std::vector<PointSummary> run_sweep(const SweepConfig& config,
                                    const std::vector<SwitchFactory>& switches,
                                    const TrafficFactory& traffic,
                                    std::vector<CellOutcome>* outcomes) {
  FIFOMS_ASSERT(!config.loads.empty(), "sweep without load points");
  FIFOMS_ASSERT(config.replications > 0, "sweep without replications");
  FIFOMS_ASSERT(config.threads >= 0, "negative thread count");
  FIFOMS_ASSERT(config.cell_attempts >= 1, "cell_attempts must be >= 1");

  // Flatten the (algorithm, load, replication) grid.  Every task's seed
  // is a pure function of its coordinates, so any execution order — and
  // any thread count — produces identical results.
  struct Task {
    std::size_t switch_index;
    std::size_t load_index;
    int replication;
  };
  std::vector<Task> tasks;
  tasks.reserve(switches.size() * config.loads.size() *
                static_cast<std::size_t>(config.replications));
  for (std::size_t s = 0; s < switches.size(); ++s)
    for (std::size_t l = 0; l < config.loads.size(); ++l)
      for (int rep = 0; rep < config.replications; ++rep)
        tasks.push_back(Task{s, l, rep});

  // Shared across workers but written WITHOUT a lock: the pool hands
  // every task_index to exactly one worker, so each element has a single
  // writer, and the pool's join barrier (the final mutex handshake in
  // for_each_index) publishes all writes back to this thread before
  // run_sweep reads them.  Workers never resize, only assign elements —
  // resizing would move the buffer under other workers' feet.
  std::vector<SimResult> results(tasks.size());
  std::vector<CellOutcome> cell_outcomes(tasks.size());
  SweepProgress progress;
  auto run_task = [&](std::size_t task_index) {
    const Task& task = tasks[task_index];
    CellOutcome& outcome = cell_outcomes[task_index];
    outcome.switch_index = task.switch_index;
    outcome.load_index = task.load_index;
    outcome.replication = task.replication;

    // Bounded retry on the cell's IDENTICAL RNG stream, then quarantine.
    // Failures never escape to the pool: the rest of the grid — and the
    // byte-identity of every other cell's result — is unaffected.
    std::shared_ptr<const SimResult> partial;
    for (int attempt = 0; attempt < config.cell_attempts; ++attempt) {
      outcome.attempts = attempt + 1;
      try {
        if (config.cell_probe) config.cell_probe(task_index, attempt);
        const SwitchFactory& factory = switches[task.switch_index];
        const double load = config.loads[task.load_index];
        auto sw = factory.make(config.num_ports);
        auto model = traffic(load);
        FIFOMS_ASSERT(model->num_ports() == config.num_ports,
                      "traffic factory built wrong port count");
        SimConfig sim_config;
        sim_config.total_slots = config.slots;
        sim_config.warmup_fraction = config.warmup_fraction;
        sim_config.seed =
            derive_seed(config.master_seed, task.load_index,
                        static_cast<std::uint64_t>(task.replication));
        sim_config.stability = config.stability;
        sim_config.fault_plan = config.fault_plan;
        sim_config.wall_limit_ms = config.cell_timeout_ms;
        Simulator simulator(*sw, *model, sim_config);
        results[task_index] = simulator.run();
        outcome.failed = false;
        outcome.error.clear();
        partial.reset();
        break;
      } catch (const SimTimeout& e) {
        outcome.failed = true;
        outcome.error = e.what();
        // Keep the watchdog's partial: if every attempt fails, the stats
        // of the slots that DID complete survive instead of vanishing.
        if (e.partial() != nullptr) partial = e.partial();
      } catch (const std::exception& e) {
        outcome.failed = true;
        outcome.error = e.what();
      } catch (...) {
        outcome.failed = true;
        outcome.error = "unknown exception";
      }
    }
    if (outcome.failed) {
      if (partial != nullptr) {
        results[task_index] = *partial;  // truncated, but real measurements
        outcome.truncated = true;
      } else {
        results[task_index] = SimResult{};  // quarantined: inert placeholder
      }
    }
    if (config.verbose) {
      // Live forward-progress line per finished cell (stderr only, never
      // part of the deterministic results).  The counter is the shared
      // aggregation point, so it takes the progress mutex.
      MutexLock lock(progress.mutex);
      ++progress.done;
      if (outcome.failed) ++progress.quarantined;
      std::fprintf(stderr, "  sweep [%zu/%zu] %s load=%.3f rep=%d%s\n",
                   progress.done, tasks.size(),
                   switches[task.switch_index].label.c_str(),
                   config.loads[task.load_index], task.replication,
                   outcome.failed ? "  QUARANTINED" : "");
    }
  };

  // Work-stealing pool: cells vary wildly in cost (unstable runs abort
  // early), so dynamic balancing beats static slicing.  Determinism is
  // untouched — every cell's seed comes from its grid coordinates above.
  ThreadPool pool(config.threads);
  pool.for_each_index(tasks.size(), run_task);

  // Pool replications per (algorithm, load), preserving grid order.
  std::vector<PointSummary> summaries;
  summaries.reserve(switches.size() * config.loads.size());
  std::size_t task_index = 0;
  for (std::size_t s = 0; s < switches.size(); ++s) {
    for (std::size_t l = 0; l < config.loads.size(); ++l) {
      std::vector<SimResult> runs;
      std::vector<char> failed;
      runs.reserve(static_cast<std::size_t>(config.replications));
      failed.reserve(static_cast<std::size_t>(config.replications));
      for (int rep = 0; rep < config.replications; ++rep) {
        failed.push_back(cell_outcomes[task_index].failed ? 1 : 0);
        runs.push_back(std::move(results[task_index++]));
      }
      summaries.push_back(
          summarise(switches[s].label, config.loads[l], runs, failed));
      if (config.verbose) {
        const PointSummary& point = summaries.back();
        std::fprintf(stderr,
                     "  %-16s load=%.3f  in=%.2f out=%.2f q=%.2f%s%s\n",
                     point.algorithm.c_str(), point.load, point.input_delay,
                     point.output_delay, point.queue_mean,
                     point.unstable() ? "  UNSTABLE" : "",
                     point.failed_count > 0 ? "  FAILED-CELLS" : "");
      }
    }
  }
  if (outcomes != nullptr) *outcomes = std::move(cell_outcomes);
  return summaries;
}

SwitchFactory make_fifoms(int max_rounds) {
  std::string label = "FIFOMS";
  if (max_rounds > 0) label += "-r" + std::to_string(max_rounds);
  return SwitchFactory{
      label, [max_rounds](int ports) -> std::unique_ptr<SwitchModel> {
        FifomsOptions options;
        options.max_rounds = max_rounds;
        return std::make_unique<VoqSwitch>(
            ports, std::make_unique<FifomsScheduler>(options));
      }};
}

SwitchFactory make_fifoms_nosplit() {
  return SwitchFactory{"FIFOMS-nosplit",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<VoqSwitch>(
                             ports,
                             std::make_unique<FifomsNoSplitScheduler>());
                       }};
}

SwitchFactory make_islip(int max_iterations) {
  std::string label = "iSLIP";
  if (max_iterations > 0) label += "-i" + std::to_string(max_iterations);
  return SwitchFactory{
      label, [max_iterations](int ports) -> std::unique_ptr<SwitchModel> {
        IslipOptions options;
        options.max_iterations = max_iterations;
        return std::make_unique<VoqSwitch>(
            ports, std::make_unique<IslipScheduler>(options));
      }};
}

SwitchFactory make_pim(int max_iterations) {
  std::string label = "PIM";
  if (max_iterations > 0) label += "-i" + std::to_string(max_iterations);
  return SwitchFactory{
      label, [max_iterations](int ports) -> std::unique_ptr<SwitchModel> {
        PimOptions options;
        options.max_iterations = max_iterations;
        return std::make_unique<VoqSwitch>(
            ports, std::make_unique<PimScheduler>(options));
      }};
}

SwitchFactory make_ilqf(int max_iterations) {
  std::string label = "iLQF";
  if (max_iterations > 0) label += "-i" + std::to_string(max_iterations);
  return SwitchFactory{
      label, [max_iterations](int ports) -> std::unique_ptr<SwitchModel> {
        IlqfOptions options;
        options.max_iterations = max_iterations;
        return std::make_unique<VoqSwitch>(
            ports, std::make_unique<IlqfScheduler>(options));
      }};
}

SwitchFactory make_drr2d() {
  return SwitchFactory{"2DRR",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<VoqSwitch>(
                             ports, std::make_unique<Drr2dScheduler>());
                       }};
}

SwitchFactory make_cioq_fifoms(int speedup) {
  return SwitchFactory{
      "FIFOMS-s" + std::to_string(speedup),
      [speedup](int ports) -> std::unique_ptr<SwitchModel> {
        return std::make_unique<CioqSwitch>(
            ports, std::make_unique<FifomsScheduler>(), speedup);
      }};
}

SwitchFactory make_tatra() {
  return SwitchFactory{"TATRA",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<SingleFifoSwitch>(
                             ports, std::make_unique<TatraScheduler>());
                       }};
}

SwitchFactory make_wba(std::int64_t age_weight, std::int64_t fanout_weight) {
  return SwitchFactory{
      "WBA",
      [age_weight, fanout_weight](int ports) -> std::unique_ptr<SwitchModel> {
        WbaOptions options;
        options.age_weight = age_weight;
        options.fanout_weight = fanout_weight;
        return std::make_unique<SingleFifoSwitch>(
            ports, std::make_unique<WbaScheduler>(options));
      }};
}

SwitchFactory make_concentrate() {
  return SwitchFactory{"Concentrate",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<SingleFifoSwitch>(
                             ports, std::make_unique<ConcentrateScheduler>());
                       }};
}

SwitchFactory make_eslip(int max_iterations) {
  std::string label = "ESLIP";
  if (max_iterations > 0) label += "-i" + std::to_string(max_iterations);
  return SwitchFactory{
      label, [max_iterations](int ports) -> std::unique_ptr<SwitchModel> {
        return std::make_unique<EslipSwitch>(ports, max_iterations);
      }};
}

SwitchFactory make_fifoms_hw() {
  return SwitchFactory{"FIFOMS-hw",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<VoqSwitch>(
                             ports,
                             std::make_unique<hw::FifomsControlUnit>());
                       }};
}

SwitchFactory make_oqfifo() {
  return SwitchFactory{"OQFIFO",
                       [](int ports) -> std::unique_ptr<SwitchModel> {
                         return std::make_unique<OqSwitch>(ports);
                       }};
}

std::vector<SwitchFactory> standard_lineup() {
  return {make_fifoms(), make_tatra(), make_islip(), make_oqfifo()};
}

}  // namespace fifoms
