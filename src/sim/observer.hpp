// SlotObserver: per-slot instrumentation hook for the Simulator.
//
// Observers see every slot's deliveries and the switch state after the
// slot completed — enough to build timelines, per-flow statistics or
// debugging traces without touching the metrics pipeline.  TextTracer is
// the standard implementation: a human-readable slot-by-slot log of the
// matchings, bounded to a slot window so tracing a hot spot of a long run
// stays cheap.
#pragma once

#include <limits>
#include <ostream>

#include "sim/switch_model.hpp"

namespace fifoms {

namespace fault {
struct FaultEvent;
}  // namespace fault

class SlotObserver {
 public:
  virtual ~SlotObserver() = default;

  /// Called for every packet the switch accepted (not for drops), before
  /// the slot's step().  Default is a no-op; observers that track
  /// conservation (e.g. MatchingAuditor) override it.
  virtual void on_inject(const SwitchModel& sw, const Packet& packet) {
    (void)sw;
    (void)packet;
  }

  /// Called once per fault event the simulator applies, at the top of the
  /// slot (before arrivals and step()).  Default is a no-op; the auditor
  /// overrides it to track which ports are down.
  virtual void on_fault_event(SlotTime now, const SwitchModel& sw,
                              const fault::FaultEvent& event) {
    (void)now;
    (void)sw;
    (void)event;
  }

  /// Called once per slot after transmission and metrics accounting.
  virtual void on_slot(SlotTime now, const SwitchModel& sw,
                       const SlotResult& result) = 0;

  /// Observer-side state for snapshot (shadow ledgers, digests).  A
  /// restored run must drive a restored observer to the same final state
  /// as the uninterrupted run — the auditor overrides these so its
  /// conservation ledger survives a resume.  Defaults are no-ops.
  virtual void save_state(snapshot::Writer& out) const { (void)out; }
  virtual void load_state(snapshot::Reader& in) { (void)in; }
};

/// Writes one line per traced slot:
///   "slot 17 | 0->3 0->5 2->1 | rounds=2 copies=3 buffered=12"
/// Idle slots are skipped unless `include_idle` is set.
class TextTracer final : public SlotObserver {
 public:
  struct Options {
    SlotTime first_slot = 0;
    SlotTime last_slot = std::numeric_limits<SlotTime>::max();
    bool include_idle = false;
  };

  TextTracer(std::ostream& out, Options options)
      : out_(out), options_(options) {}
  explicit TextTracer(std::ostream& out) : TextTracer(out, Options{}) {}

  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override;

  std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& out_;
  Options options_;
  std::uint64_t lines_ = 0;
};

}  // namespace fifoms
