// OqSwitch: output-queued switch with FIFO service (the paper's OQFIFO).
//
// Models the N-times-speedup idealisation: every copy of an arriving
// packet is enqueued at its destination output within the arrival slot,
// and each output transmits one cell per slot in FIFO order.  No scheduler
// and no input contention — the delay is pure output queueing, which is
// why the paper uses OQFIFO as the performance upper bound.
#pragma once

#include "fabric/output_fifo.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class OqSwitch final : public SwitchModel {
 public:
  explicit OqSwitch(int num_ports);

  std::string_view name() const override { return "OQFIFO"; }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet& packet) override;
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  /// Queue-size metric for OQFIFO: cells buffered at an output port.
  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;

  const OutputFifo& output(PortId port) const;
  void set_fault_state(const fault::FaultState* faults) override {
    faults_ = faults;
  }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  const fault::FaultState* faults_ = nullptr;
  int num_ports_;
  std::vector<OutputFifo> outputs_;
  std::vector<SlotTime> last_arrival_slot_;
};

}  // namespace fifoms
