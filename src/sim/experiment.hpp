// Experiment harness: load sweeps over algorithms with replications.
//
// Every figure in the paper is a sweep of effective load for a fixed
// switch size and traffic family, one curve per algorithm.  run_sweep()
// reproduces that protocol: for each (algorithm, load, replication) it
// builds a fresh switch and traffic model, runs a Simulator with a seed
// derived from (master_seed, load index, replication), and pools the
// replications into one PointSummary per (algorithm, load).
//
// standard_lineup() returns factories for the paper's four algorithms
// (FIFOMS, TATRA, iSLIP, OQFIFO); the benches extend it with ablation
// variants where needed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace fifoms {

struct SwitchFactory {
  std::string label;
  std::function<std::unique_ptr<SwitchModel>(int num_ports)> make;
};

/// Builds a traffic model offering the given effective load.
using TrafficFactory =
    std::function<std::unique_ptr<TrafficModel>(double load)>;

struct SweepConfig {
  int num_ports = 16;
  std::vector<double> loads;
  SlotTime slots = 200'000;
  double warmup_fraction = 0.5;
  int replications = 3;
  std::uint64_t master_seed = 42;
  StabilityConfig stability;
  /// Worker threads for the (algorithm, load, replication) task grid.
  /// Results are bit-identical for any thread count: every run's seed is
  /// derived from its grid coordinates, never from execution order.
  /// 0 = one thread per hardware core; 1 = serial.
  int threads = 1;
  /// Print one progress line per finished point to stderr.
  bool verbose = false;

  // ---- Hardening (docs/FAULTS.md, "hardened sweep engine") --------------

  /// Attempts per cell before it is quarantined (>= 1).  A retry replays
  /// the cell's IDENTICAL derived seed — a deterministic failure fails
  /// every attempt; only environmental flakes (e.g. a wall-clock timeout
  /// on a loaded host) can recover.
  int cell_attempts = 1;
  /// Per-cell wall-clock watchdog, forwarded to SimConfig::wall_limit_ms;
  /// a cell that exceeds it throws SimTimeout and is retried/quarantined
  /// like any other failure.  0 disables the watchdog.
  std::int64_t cell_timeout_ms = 0;
  /// Optional fault schedule applied to every cell (not owned; must match
  /// num_ports and outlive the sweep).
  const fault::FaultPlan* fault_plan = nullptr;
  /// Test hook, called before every attempt as cell_probe(cell, attempt)
  /// with the flattened cell index and the 0-based attempt number.  An
  /// exception it throws counts as that attempt failing — this is how the
  /// kill tests force a chosen cell to fail without touching the models.
  std::function<void(std::size_t, int)> cell_probe;
};

/// Per-cell report of the hardened sweep: which grid cell, how many
/// attempts it took, and — for quarantined cells — the final error.
struct CellOutcome {
  std::size_t switch_index = 0;
  std::size_t load_index = 0;
  int replication = 0;
  int attempts = 0;
  bool failed = false;
  /// Failed cell whose SimTimeout carried a partial result: the stats of
  /// the completed slots were preserved instead of discarded.
  bool truncated = false;
  std::string error;  // empty unless failed
};

struct PointSummary {
  std::string algorithm;
  double load = 0.0;
  int replications = 0;
  int unstable_count = 0;
  /// Replications quarantined by the hardened sweep with nothing
  /// preserved (excluded from every mean below; surfaces as the `failed`
  /// CSV column).
  int failed_count = 0;
  /// Replications cut short by the wall-clock watchdog whose completed
  /// slots WERE preserved: they contribute to the means below over the
  /// slots that ran (surfaces as the `truncated` CSV column).
  int truncated_count = 0;

  // Means over stable replications (all replications when none is stable).
  double input_delay = 0.0;
  double output_delay = 0.0;
  double output_delay_p99 = 0.0;
  double queue_mean = 0.0;
  double queue_max = 0.0;  // mean over replications of per-run max
  double rounds_busy = 0.0;
  double rounds_all = 0.0;
  double throughput = 0.0;

  // Standard errors across replications.
  double input_delay_se = 0.0;
  double output_delay_se = 0.0;

  bool unstable() const { return unstable_count == replications; }
};

/// Runs the grid.  A cell that throws (model failure, SimTimeout, probe
/// injection) is retried up to cell_attempts times on its identical RNG
/// stream, then quarantined: the sweep still returns every other cell,
/// with the casualty excluded from its point's means and counted in
/// failed_count.  Pass `outcomes` to receive the per-cell report (grid
/// order; one entry per (algorithm, load, replication)).
std::vector<PointSummary> run_sweep(const SweepConfig& config,
                                    const std::vector<SwitchFactory>& switches,
                                    const TrafficFactory& traffic,
                                    std::vector<CellOutcome>* outcomes =
                                        nullptr);

/// Factories for the paper's algorithm lineup.
SwitchFactory make_fifoms(int max_rounds = 0);
SwitchFactory make_fifoms_nosplit();
SwitchFactory make_islip(int max_iterations = 0);
SwitchFactory make_pim(int max_iterations = 0);
SwitchFactory make_ilqf(int max_iterations = 0);
SwitchFactory make_drr2d();
SwitchFactory make_tatra();
SwitchFactory make_wba(std::int64_t age_weight = 1,
                       std::int64_t fanout_weight = 1);
SwitchFactory make_concentrate();

/// ESLIP on the hybrid (N unicast VOQs + one multicast FIFO) structure.
SwitchFactory make_eslip(int max_iterations = 0);

/// FIFOMS driven by the gate-level control unit of Section IV
/// (hw::FifomsControlUnit); matchings are identical to FIFOMS with the
/// lowest-input tie-break, but comparator usage is accounted.
SwitchFactory make_fifoms_hw();
SwitchFactory make_oqfifo();

/// CIOQ switch: FIFOMS with fabric speedup S and per-output FIFOs.
SwitchFactory make_cioq_fifoms(int speedup);

/// FIFOMS, TATRA, iSLIP, OQFIFO — the four curves of Figs. 4, 6, 7, 8.
std::vector<SwitchFactory> standard_lineup();

}  // namespace fifoms
