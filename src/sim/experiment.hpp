// Experiment harness: load sweeps over algorithms with replications.
//
// Every figure in the paper is a sweep of effective load for a fixed
// switch size and traffic family, one curve per algorithm.  run_sweep()
// reproduces that protocol: for each (algorithm, load, replication) it
// builds a fresh switch and traffic model, runs a Simulator with a seed
// derived from (master_seed, load index, replication), and pools the
// replications into one PointSummary per (algorithm, load).
//
// standard_lineup() returns factories for the paper's four algorithms
// (FIFOMS, TATRA, iSLIP, OQFIFO); the benches extend it with ablation
// variants where needed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace fifoms {

struct SwitchFactory {
  std::string label;
  std::function<std::unique_ptr<SwitchModel>(int num_ports)> make;
};

/// Builds a traffic model offering the given effective load.
using TrafficFactory =
    std::function<std::unique_ptr<TrafficModel>(double load)>;

struct SweepConfig {
  int num_ports = 16;
  std::vector<double> loads;
  SlotTime slots = 200'000;
  double warmup_fraction = 0.5;
  int replications = 3;
  std::uint64_t master_seed = 42;
  StabilityConfig stability;
  /// Worker threads for the (algorithm, load, replication) task grid.
  /// Results are bit-identical for any thread count: every run's seed is
  /// derived from its grid coordinates, never from execution order.
  /// 0 = one thread per hardware core; 1 = serial.
  int threads = 1;
  /// Print one progress line per finished point to stderr.
  bool verbose = false;
};

struct PointSummary {
  std::string algorithm;
  double load = 0.0;
  int replications = 0;
  int unstable_count = 0;

  // Means over stable replications (all replications when none is stable).
  double input_delay = 0.0;
  double output_delay = 0.0;
  double output_delay_p99 = 0.0;
  double queue_mean = 0.0;
  double queue_max = 0.0;  // mean over replications of per-run max
  double rounds_busy = 0.0;
  double rounds_all = 0.0;
  double throughput = 0.0;

  // Standard errors across replications.
  double input_delay_se = 0.0;
  double output_delay_se = 0.0;

  bool unstable() const { return unstable_count == replications; }
};

std::vector<PointSummary> run_sweep(const SweepConfig& config,
                                    const std::vector<SwitchFactory>& switches,
                                    const TrafficFactory& traffic);

/// Factories for the paper's algorithm lineup.
SwitchFactory make_fifoms(int max_rounds = 0);
SwitchFactory make_fifoms_nosplit();
SwitchFactory make_islip(int max_iterations = 0);
SwitchFactory make_pim(int max_iterations = 0);
SwitchFactory make_ilqf(int max_iterations = 0);
SwitchFactory make_drr2d();
SwitchFactory make_tatra();
SwitchFactory make_wba(std::int64_t age_weight = 1,
                       std::int64_t fanout_weight = 1);
SwitchFactory make_concentrate();

/// ESLIP on the hybrid (N unicast VOQs + one multicast FIFO) structure.
SwitchFactory make_eslip(int max_iterations = 0);

/// FIFOMS driven by the gate-level control unit of Section IV
/// (hw::FifomsControlUnit); matchings are identical to FIFOMS with the
/// lowest-input tie-break, but comparator usage is accounted.
SwitchFactory make_fifoms_hw();
SwitchFactory make_oqfifo();

/// CIOQ switch: FIFOMS with fabric speedup S and per-output FIFOs.
SwitchFactory make_cioq_fifoms(int speedup);

/// FIFOMS, TATRA, iSLIP, OQFIFO — the four curves of Figs. 4, 6, 7, 8.
std::vector<SwitchFactory> standard_lineup();

}  // namespace fifoms
