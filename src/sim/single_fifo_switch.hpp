// SingleFifoSwitch: single input-queued switch (paper Fig. 1(b)) with a
// pluggable HolScheduler (TATRA, WBA).
//
// Only the head-of-line cell of each input is visible to the scheduler —
// the architecture whose HOL blocking the paper quantifies.  Fanout
// splitting is supported: the scheduler may serve any subset of the HOL
// cell's residue; the cell departs when the residue is exhausted.
#pragma once

#include <memory>

#include "core/matching.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/single_fifo_input.hpp"
#include "sched/hol_scheduler.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class SingleFifoSwitch final : public SwitchModel {
 public:
  struct Options {
    /// Maximum packets buffered per input FIFO; 0 = unlimited.
    std::size_t input_capacity = 0;
  };

  SingleFifoSwitch(int num_ports, std::unique_ptr<HolScheduler> scheduler);
  SingleFifoSwitch(int num_ports, std::unique_ptr<HolScheduler> scheduler,
                   Options options);

  std::string_view name() const override { return scheduler_->name(); }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet& packet) override;
  std::uint64_t dropped_packets() const override { return dropped_; }
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;

  const SingleFifoInput& input(PortId port) const;
  HolScheduler& scheduler() { return *scheduler_; }
  void set_fault_state(const fault::FaultState* faults) override {
    faults_ = faults;
  }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  const fault::FaultState* faults_ = nullptr;
  int num_ports_;
  std::unique_ptr<HolScheduler> scheduler_;
  Options options_;
  std::uint64_t dropped_ = 0;
  std::vector<SingleFifoInput> inputs_;
  Crossbar crossbar_;
  SlotMatching matching_;
  std::vector<HolCellView> hol_views_;
  std::vector<SlotTime> last_arrival_slot_;
};

}  // namespace fifoms
