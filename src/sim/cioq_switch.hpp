// CioqSwitch: combined input/output queued switch with speedup S
// (library extension; the design point between the paper's two extremes).
//
// The paper contrasts the pure input-queued switch (speedup 1, hard
// scheduling problem) with the output-queued switch (speedup N,
// unbuildable fabric).  A CIOQ switch runs the fabric S times per slot:
// each of the S phases computes a fresh matching with the configured
// VoqScheduler and moves one cell per matched pair into per-output FIFOs,
// which drain one cell per slot onto the line.  S = 1 degenerates to the
// VOQ switch (plus an output register); growing S converges toward OQ
// behaviour.  The abl_speedup bench quantifies how much speedup FIFOMS
// leaves on the table.
#pragma once

#include <memory>
#include <string>

#include "core/matching.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/mc_voq_input.hpp"
#include "fabric/output_fifo.hpp"
#include "sched/voq_scheduler.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class CioqSwitch final : public SwitchModel {
 public:
  CioqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
             int speedup);

  std::string_view name() const override { return label_; }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }
  int speedup() const { return speedup_; }

  bool inject(const Packet& packet) override;
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  /// Input-side occupancy (data cells), comparable with VoqSwitch.
  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;

  std::size_t output_occupancy(PortId port) const;
  const McVoqInput& input(PortId port) const;
  void set_fault_state(const fault::FaultState* faults) override {
    faults_ = faults;
  }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  const fault::FaultState* faults_ = nullptr;
  int num_ports_;
  int speedup_;
  std::string label_;
  std::unique_ptr<VoqScheduler> scheduler_;
  std::vector<McVoqInput> inputs_;
  std::vector<OutputFifo> outputs_;
  Crossbar crossbar_;
  SlotMatching matching_;
  std::vector<SlotTime> last_arrival_slot_;
};

}  // namespace fifoms
