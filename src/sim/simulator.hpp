// Simulator: the slotted-time driver (paper Section V methodology).
//
// Per slot: (1) arrivals — ask the traffic model for at most one packet
// per input and inject it; (2) step — schedule, transmit, post-process;
// (3) metrics and stability bookkeeping.  A run ends at the configured
// horizon or as soon as the stability monitor declares divergence.
//
// Determinism: the traffic model and the scheduler draw from two
// *separate* RNG streams derived from the run seed, so every algorithm
// sees the bit-identical arrival sequence for a given (config, seed) —
// scheduler comparisons are paired, not merely statistically matched.
//
// The driver is steppable: prepare() arms a run, step() executes exactly
// one slot, done() reports the end condition and finalize() builds the
// report.  run() is the classic one-shot composition of the four and is
// bit-identical to stepping by hand.  Between steps the complete run
// state — both RNG streams, the packet-id counter, metrics, stability,
// the switch, the traffic model and the fault cursor — can be serialised
// with save_state() and restored with load_state(), the foundation of
// the checkpoint/restore engine (docs/RECOVERY.md): restore(snapshot(S))
// resumed k slots is bit-identical to running S straight.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/stability.hpp"
#include "sim/switch_model.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms {

struct SimConfig {
  SlotTime total_slots = 200'000;
  /// Fraction of total_slots used as warm-up (paper: "typically half").
  double warmup_fraction = 0.5;
  std::uint64_t seed = 1;
  StabilityConfig stability;
  /// Optional fault schedule (not owned; must outlive the run).  The
  /// traffic streams are drawn identically with or without a plan —
  /// arrivals at a failed line card are drawn, then suppressed — so a
  /// faulted run stays paired with its fault-free twin.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Cooperative wall-clock watchdog: > 0 makes run() throw SimTimeout
  /// once the run has taken this many milliseconds (checked every few
  /// hundred slots).  0 disables the check.
  std::int64_t wall_limit_ms = 0;
};

struct SimResult {
  std::string algorithm;
  std::string traffic;
  double offered_load = 0.0;
  SlotTime total_slots = 0;
  SlotTime warmup_end = 0;

  bool unstable = false;
  SlotTime unstable_at = -1;
  /// True when the run was cut short (wall-clock watchdog): the fields
  /// cover only the slots that completed before the interruption.
  bool truncated = false;

  RunningStat input_delay;
  RunningStat output_delay;
  double output_delay_p99 = 0.0;
  /// Per-QoS-class output-oriented delay (index = Packet::priority);
  /// size 1 for single-class traffic.
  std::vector<RunningStat> class_output_delays;
  RunningStat queue_mean;
  std::size_t queue_max = 0;
  RunningStat rounds_all;
  RunningStat rounds_busy;
  Histogram rounds_hist;

  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t copies_offered = 0;
  std::uint64_t copies_delivered = 0;
  /// Packets refused by a finite input buffer (whole-packet drops).
  std::uint64_t packets_dropped = 0;
  /// Packets drawn by the traffic model but lost at a failed line card.
  std::uint64_t packets_suppressed = 0;
  /// Copies purged at a failed output (StrandedCellPolicy::kPurge).
  std::uint64_t copies_purged = 0;
  /// Fault events applied over the run (0 without a fault plan).
  std::uint64_t fault_events_applied = 0;
  std::size_t in_flight_at_end = 0;
  double throughput = 0.0;

  /// Fraction of offered packets lost to full buffers.
  double loss_rate() const {
    const std::uint64_t offered = packets_offered + packets_dropped;
    return offered == 0 ? 0.0
                        : static_cast<double>(packets_dropped) /
                              static_cast<double>(offered);
  }
};

/// Thrown by Simulator::run when a wall-clock limit is exceeded (the
/// sweep engine's per-cell watchdog).  An exception — never an abort —
/// so the sweep can quarantine the cell and keep the rest of the grid.
/// Carries the partial result of the completed slots (truncated = true)
/// so the sweep preserves what finished instead of discarding the cell.
class SimTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  SimTimeout(const std::string& what, std::shared_ptr<const SimResult> partial)
      : std::runtime_error(what), partial_(std::move(partial)) {}

  /// Metrics of the slots that completed before the watchdog fired;
  /// null when the thrower had nothing to report.
  const std::shared_ptr<const SimResult>& partial() const { return partial_; }

 private:
  std::shared_ptr<const SimResult> partial_;
};

class Simulator {
 public:
  /// Neither reference is owned; both must outlive the Simulator.
  Simulator(SwitchModel& sw, TrafficModel& traffic, SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Run the full horizon (or until instability) and return the report.
  /// Exactly prepare() + step() while !done() + finalize().
  SimResult run();

  // ---- Steppable surface (checkpoint/restore engine) --------------------
  /// Arm a fresh run: derive both RNG streams, reset the traffic model,
  /// metrics and stability, and attach the fault plan.  Does NOT clear
  /// the switch (run() never did); pass a fresh or cleared switch.
  void prepare();
  /// prepare() with the switch cleared first: a from-scratch restart on
  /// a switch that already ran (the recovery engine's no-usable-
  /// checkpoint fallback).
  void restart();
  /// True once the horizon is reached or instability was declared.
  bool done() const;
  /// Execute exactly one slot (arrivals, schedule, metrics, stability).
  /// Precondition: prepare() was called and done() is false.
  void step();
  /// Build the report for the executed slots and detach the fault plan.
  SimResult finalize();
  /// Next slot to execute == slots executed so far.
  SlotTime now() const { return now_; }

  /// Attach a per-slot observer (not owned; nullptr detaches).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

  /// Fingerprint of the run configuration (seed, horizon, model names,
  /// port counts, fault-plan shape).  Stamped into every checkpoint
  /// frame so a snapshot can never be restored into a different run.
  std::uint64_t state_fingerprint() const;
  /// Serialise the complete run state at a slot boundary.  Precondition:
  /// prepare() was called (steps taken so far are captured exactly).
  void save_state(snapshot::Writer& out) const;
  /// Restore a run state saved by save_state().  Internally re-arms via
  /// prepare() and clears the switch first, then replays the fault plan
  /// up to the restored slot, so the resumed run is bit-identical to the
  /// uninterrupted one.  Throws snapshot::SnapshotError on invalid data.
  void load_state(snapshot::Reader& in);

 private:
  /// Build the report for the slots executed so far (no detach).
  SimResult report() const;
  void detach_faults();

  SwitchModel& switch_;
  TrafficModel& traffic_;
  SimConfig config_;
  SlotObserver* observer_ = nullptr;
  PacketId next_packet_id_ = 0;

  bool prepared_ = false;
  SlotTime warmup_end_ = 0;
  SlotTime now_ = 0;
  Rng traffic_rng_;
  Rng sched_rng_;
  std::optional<MetricsCollector> metrics_;
  StabilityMonitor stability_;
  std::optional<fault::FaultState> faults_;
  bool faults_attached_ = false;
  std::uint64_t packets_suppressed_ = 0;
  std::uint64_t fault_events_applied_ = 0;
  SlotResult slot_result_;
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace fifoms
