// Simulator: the slotted-time driver (paper Section V methodology).
//
// Per slot: (1) arrivals — ask the traffic model for at most one packet
// per input and inject it; (2) step — schedule, transmit, post-process;
// (3) metrics and stability bookkeeping.  A run ends at the configured
// horizon or as soon as the stability monitor declares divergence.
//
// Determinism: the traffic model and the scheduler draw from two
// *separate* RNG streams derived from the run seed, so every algorithm
// sees the bit-identical arrival sequence for a given (config, seed) —
// scheduler comparisons are paired, not merely statistically matched.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/stability.hpp"
#include "sim/switch_model.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms {

/// Thrown by Simulator::run when a wall-clock limit is exceeded (the
/// sweep engine's per-cell watchdog).  An exception — never an abort —
/// so the sweep can quarantine the cell and keep the rest of the grid.
class SimTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SimConfig {
  SlotTime total_slots = 200'000;
  /// Fraction of total_slots used as warm-up (paper: "typically half").
  double warmup_fraction = 0.5;
  std::uint64_t seed = 1;
  StabilityConfig stability;
  /// Optional fault schedule (not owned; must outlive the run).  The
  /// traffic streams are drawn identically with or without a plan —
  /// arrivals at a failed line card are drawn, then suppressed — so a
  /// faulted run stays paired with its fault-free twin.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Cooperative wall-clock watchdog: > 0 makes run() throw SimTimeout
  /// once the run has taken this many milliseconds (checked every few
  /// hundred slots).  0 disables the check.
  std::int64_t wall_limit_ms = 0;
};

struct SimResult {
  std::string algorithm;
  std::string traffic;
  double offered_load = 0.0;
  SlotTime total_slots = 0;
  SlotTime warmup_end = 0;

  bool unstable = false;
  SlotTime unstable_at = -1;

  RunningStat input_delay;
  RunningStat output_delay;
  double output_delay_p99 = 0.0;
  /// Per-QoS-class output-oriented delay (index = Packet::priority);
  /// size 1 for single-class traffic.
  std::vector<RunningStat> class_output_delays;
  RunningStat queue_mean;
  std::size_t queue_max = 0;
  RunningStat rounds_all;
  RunningStat rounds_busy;
  Histogram rounds_hist;

  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t copies_offered = 0;
  std::uint64_t copies_delivered = 0;
  /// Packets refused by a finite input buffer (whole-packet drops).
  std::uint64_t packets_dropped = 0;
  /// Packets drawn by the traffic model but lost at a failed line card.
  std::uint64_t packets_suppressed = 0;
  /// Copies purged at a failed output (StrandedCellPolicy::kPurge).
  std::uint64_t copies_purged = 0;
  /// Fault events applied over the run (0 without a fault plan).
  std::uint64_t fault_events_applied = 0;
  std::size_t in_flight_at_end = 0;
  double throughput = 0.0;

  /// Fraction of offered packets lost to full buffers.
  double loss_rate() const {
    const std::uint64_t offered = packets_offered + packets_dropped;
    return offered == 0 ? 0.0
                        : static_cast<double>(packets_dropped) /
                              static_cast<double>(offered);
  }
};

class Simulator {
 public:
  /// Neither reference is owned; both must outlive the Simulator.
  Simulator(SwitchModel& sw, TrafficModel& traffic, SimConfig config);

  /// Run the full horizon (or until instability) and return the report.
  SimResult run();

  /// Attach a per-slot observer (not owned; nullptr detaches).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

 private:
  SwitchModel& switch_;
  TrafficModel& traffic_;
  SimConfig config_;
  SlotObserver* observer_ = nullptr;
  PacketId next_packet_id_ = 0;
};

}  // namespace fifoms
