#include "sim/single_fifo_switch.hpp"

#include "fault/fault.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

SingleFifoSwitch::SingleFifoSwitch(int num_ports,
                                   std::unique_ptr<HolScheduler> scheduler)
    : SingleFifoSwitch(num_ports, std::move(scheduler), Options{}) {}

SingleFifoSwitch::SingleFifoSwitch(int num_ports,
                                   std::unique_ptr<HolScheduler> scheduler,
                                   Options options)
    : num_ports_(num_ports), scheduler_(std::move(scheduler)),
      options_(options), crossbar_(num_ports, num_ports) {
  FIFOMS_ASSERT(scheduler_ != nullptr, "SingleFifoSwitch requires a scheduler");
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port) inputs_.emplace_back(port);
  hol_views_.resize(static_cast<std::size_t>(num_ports));
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
  scheduler_->reset(num_ports, num_ports);
}

bool SingleFifoSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;
  SingleFifoInput& port = inputs_[static_cast<std::size_t>(packet.input)];
  if (options_.input_capacity > 0 &&
      port.queue_size() >= options_.input_capacity) {
    ++dropped_;
    return false;
  }
  port.accept(packet);
  return true;
}

void SingleFifoSwitch::step(SlotTime now, Rng& rng, SlotResult& result) {
  // Fault degradation on the HOL architecture is pure view masking: the
  // scheduler only ever sees residues restricted to live outputs, and a
  // failed input presents an empty view.  The queues themselves are
  // untouched (hold semantics), so service resumes when the fault clears.
  const bool faulted = faults_ != nullptr && faults_->active();
  for (PortId input = 0; input < num_ports_; ++input) {
    HolCellView& view = hol_views_[static_cast<std::size_t>(input)];
    const SingleFifoInput& port = inputs_[static_cast<std::size_t>(input)];
    if (port.empty() ||
        (faulted && faults_->failed_inputs().contains(input))) {
      view = HolCellView{};
      continue;
    }
    const FifoCell& cell = port.hol();
    view = HolCellView{
        .valid = true,
        .input = input,
        .packet = cell.packet,
        .arrival = cell.arrival,
        .remaining = cell.remaining,
        .initial_fanout = cell.initial_fanout,
    };
    if (faulted) {
      view.remaining -= faults_->failed_outputs();
      view.remaining -= faults_->link_faults_for(input);
      if (view.remaining.empty()) view = HolCellView{};
    }
  }

  matching_.reset(num_ports_, num_ports_);
  scheduler_->schedule(hol_views_, now, matching_, rng);
  matching_.validate();
  crossbar_.configure(matching_.input_grant_sets());

  for (PortId input = 0; input < num_ports_; ++input) {
    const PortSet& targets = crossbar_.outputs_for_input(input);
    if (targets.empty()) continue;
    SingleFifoInput& port = inputs_[static_cast<std::size_t>(input)];
    FIFOMS_ASSERT(!port.empty(), "matching granted an empty input");
    const FifoCell cell = port.hol();  // copy before serve_hol may pop it
    FIFOMS_ASSERT(targets.is_subset_of(cell.remaining),
                  "scheduler granted outputs outside the HOL residue");
    port.serve_hol(targets);
    for (PortId output : targets) {
      result.deliveries.push_back(Delivery{
          .packet = cell.packet,
          .input = input,
          .output = output,
          .arrival = cell.arrival,
          .payload_tag = cell.payload_tag,
      });
    }
  }
  crossbar_.release();

  result.rounds = matching_.rounds;
  result.matched_pairs = matching_.matched_pairs();
}

std::size_t SingleFifoSwitch::occupancy(PortId port) const {
  return input(port).queue_size();
}

std::size_t SingleFifoSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& port : inputs_) total += port.queue_size();
  return total;
}

void SingleFifoSwitch::clear() {
  for (auto& port : inputs_) port.clear();
  for (auto& slot : last_arrival_slot_) slot = -1;
  dropped_ = 0;
  scheduler_->reset(num_ports_, num_ports_);
}

const SingleFifoInput& SingleFifoSwitch::input(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "input out of range");
  return inputs_[static_cast<std::size_t>(port)];
}


void SingleFifoSwitch::save_state(snapshot::Writer& out) const {
  out.u64(dropped_);
  for (SlotTime slot : last_arrival_slot_) out.i64(slot);
  for (const SingleFifoInput& port : inputs_) {
    const std::vector<FifoCell> cells = port.cells();
    out.u64(cells.size());
    for (const FifoCell& cell : cells) snapshot::write_fifo_cell(out, cell);
  }
  scheduler_->save_state(out);
}

void SingleFifoSwitch::load_state(snapshot::Reader& in) {
  dropped_ = in.u64();
  for (SlotTime& slot : last_arrival_slot_) slot = in.i64();
  std::vector<FifoCell> cells;
  for (SingleFifoInput& port : inputs_) {
    const std::size_t count = in.length(snapshot::kMaxContainer);
    cells.clear();
    cells.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      cells.push_back(snapshot::read_fifo_cell(in));
    port.restore_cells(cells);
  }
  scheduler_->load_state(in);
}

}  // namespace fifoms
