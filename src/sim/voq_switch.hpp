// VoqSwitch: the paper's multicast VOQ switch (Section II) with a
// pluggable VoqScheduler (FIFOMS, iSLIP, PIM, ...).
//
// Per slot: the scheduler produces a SlotMatching from the HOL state, the
// crossbar validates and adopts it, every matched (input, output) pair
// serves one address cell, and the post-transmission processing of Table 2
// (fanout-counter decrement, data-cell destruction) happens inside
// McVoqInput::serve_hol.  The switch additionally asserts the structural
// FIFOMS property that all copies an input sends in one slot belong to the
// same data cell — one input physically drives the crossbar with one cell.
#pragma once

#include <memory>

#include "core/matching.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/mc_voq_input.hpp"
#include "sched/voq_scheduler.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class VoqSwitch final : public SwitchModel {
 public:
  struct Options {
    /// Maximum data cells buffered per input port; 0 = unlimited.  A
    /// packet arriving at a full input is dropped whole (all copies) —
    /// the paper's "maximum queue size" metric reads off the capacity
    /// needed to make this never happen.
    std::size_t input_capacity = 0;
    /// QoS classes (strict priority, 0 highest).  1 = the paper's
    /// single-class structure.  Packets carry their class in
    /// Packet::priority; see McVoqInput for the queueing discipline.
    int num_classes = 1;
  };

  VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler);
  VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
            Options options);

  std::string_view name() const override { return scheduler_->name(); }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet& packet) override;
  std::uint64_t dropped_packets() const override { return dropped_; }
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;

  /// Test access to the queue structure of one input port.
  const McVoqInput& input(PortId port) const;
  VoqScheduler& scheduler() { return *scheduler_; }

 private:
  int num_ports_;
  std::unique_ptr<VoqScheduler> scheduler_;
  Options options_;
  std::uint64_t dropped_ = 0;
  std::vector<McVoqInput> inputs_;
  Crossbar crossbar_;
  SlotMatching matching_;                     // reused across slots
  std::vector<SlotTime> last_arrival_slot_;   // single-arrival enforcement
};

}  // namespace fifoms
