// VoqSwitch: the paper's multicast VOQ switch (Section II) with a
// pluggable VoqScheduler (FIFOMS, iSLIP, PIM, ...).
//
// Per slot: the scheduler produces a SlotMatching from the HOL state, the
// crossbar validates and adopts it, every matched (input, output) pair
// serves one address cell, and the post-transmission processing of Table 2
// (fanout-counter decrement, data-cell destruction) happens inside
// McVoqInput::serve_hol.  The switch additionally asserts the structural
// FIFOMS property that all copies an input sends in one slot belong to the
// same data cell — one input physically drives the crossbar with one cell.
#pragma once

#include <memory>

#include "core/matching.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/mc_voq_input.hpp"
#include "sched/voq_scheduler.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

/// What happens to address cells stranded in the VOQ of a failed output
/// (docs/FAULTS.md).  kHold keeps them queued until the output recovers;
/// kPurge discards them at the top of every faulted slot, decrementing
/// the data cells' fanout counters through the normal serve path.
enum class StrandedCellPolicy {
  kHold,
  kPurge,
};

class VoqSwitch final : public SwitchModel {
 public:
  struct Options {
    /// Maximum data cells buffered per input port; 0 = unlimited.  A
    /// packet arriving at a full input is dropped whole (all copies) —
    /// the paper's "maximum queue size" metric reads off the capacity
    /// needed to make this never happen.
    std::size_t input_capacity = 0;
    /// QoS classes (strict priority, 0 highest).  1 = the paper's
    /// single-class structure.  Packets carry their class in
    /// Packet::priority; see McVoqInput for the queueing discipline.
    int num_classes = 1;
    /// Degradation policy for cells addressed to a failed output.
    StrandedCellPolicy stranded_policy = StrandedCellPolicy::kHold;
    /// Test-only mutant: skip fault masking and grant sanitisation so the
    /// scheduler happily serves dead outputs.  Exists to prove the
    /// auditor's no-grant-to-failed-output check has teeth; never set it
    /// in a real configuration.
    bool mutant_skip_fault_masking = false;
  };

  VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler);
  VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
            Options options);

  std::string_view name() const override { return scheduler_->name(); }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet& packet) override;
  std::uint64_t dropped_packets() const override { return dropped_; }
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;
  void set_fault_state(const fault::FaultState* faults) override;

  /// Attach (or detach, with nullptr) a backpressure mask: outputs the
  /// surrounding fabric has paused for the current slot (downstream
  /// buffer full — see src/net/network_fabric.hpp).  The mask is read at
  /// every step() and merged into the scheduler's constraints exactly
  /// like failed outputs; an empty (or absent) mask takes the
  /// unconstrained path, bit-identical to the standalone switch.
  void set_backpressure(const PortSet* paused) { backpressure_ = paused; }

  /// Test access to the queue structure of one input port.
  const McVoqInput& input(PortId port) const;
  VoqScheduler& scheduler() { return *scheduler_; }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  /// kPurge housekeeping at the top of a faulted slot: drain every VOQ
  /// addressed to a currently-failed output into result.purged.
  void purge_stranded_cells(SlotResult& result);
  /// Deterministically flip grant wires for this slot's kGrantCorrupt
  /// events (salts come from the fault plan, never from `rng`).
  void apply_grant_corruption(SlotTime now);
  /// Drop matched pairs that reference a dead port/link or an empty VOQ,
  /// and resolve cross-data-cell grants a corruption may have produced.
  void sanitize_matching();

  int num_ports_;
  std::unique_ptr<VoqScheduler> scheduler_;
  Options options_;
  std::uint64_t dropped_ = 0;
  std::vector<McVoqInput> inputs_;
  Crossbar crossbar_;
  SlotMatching matching_;                     // reused across slots
  std::vector<SlotTime> last_arrival_slot_;   // single-arrival enforcement
  const fault::FaultState* faults_ = nullptr;
  const PortSet* backpressure_ = nullptr;
  std::vector<McVoqInput::Served> purge_scratch_;
};

}  // namespace fifoms
