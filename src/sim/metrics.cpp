#include "sim/metrics.hpp"

#include <algorithm>

#include "common/panic.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

MetricsCollector::MetricsCollector(SlotTime warmup_end, int occupancy_ports)
    : warmup_end_(warmup_end), occupancy_ports_(occupancy_ports) {
  FIFOMS_ASSERT(warmup_end >= 0, "negative warm-up boundary");
  FIFOMS_ASSERT(occupancy_ports > 0, "no occupancy ports");
}

void MetricsCollector::on_inject(const Packet& packet) {
  ++packets_offered_;
  copies_offered_ += static_cast<std::uint64_t>(packet.fanout());
  const auto [it, inserted] = pending_.emplace(
      packet.id, Pending{packet.arrival, packet.fanout(), packet.priority});
  (void)it;
  FIFOMS_ASSERT(inserted, "duplicate packet id injected");
}

void MetricsCollector::on_slot_end(const SwitchModel& sw,
                                   const SlotResult& result, SlotTime now) {
  const bool measured = now >= warmup_end_;

  for (const Delivery& delivery : result.deliveries) {
    const auto it = pending_.find(delivery.packet);
    FIFOMS_ASSERT(it != pending_.end(), "delivery for unknown packet");
    Pending& pending = it->second;
    FIFOMS_ASSERT(pending.remaining > 0, "packet delivered too many times");
    FIFOMS_ASSERT(delivery.arrival == pending.arrival,
                  "delivery carries wrong arrival slot");
    FIFOMS_ASSERT(now >= pending.arrival, "delivery before arrival");

    ++copies_delivered_;
    const bool packet_measured = pending.arrival >= warmup_end_;
    const auto delay = static_cast<double>(now - pending.arrival);
    if (packet_measured) {
      output_delay_.add(delay);
      output_delay_p99_.add(delay);
      const auto cls = static_cast<std::size_t>(pending.priority);
      if (cls >= class_output_delay_.size())
        class_output_delay_.resize(cls + 1);
      class_output_delay_[cls].add(delay);
    }
    if (--pending.remaining == 0) {
      ++packets_delivered_;
      if (packet_measured) input_delay_.add(delay);  // last copy: max delay
      pending_.erase(it);
    }
  }

  // Copies purged at a dead output leave flight without being delivered:
  // they retire their share of the fanout but contribute no delay sample.
  for (const Delivery& purge : result.purged) {
    const auto it = pending_.find(purge.packet);
    FIFOMS_ASSERT(it != pending_.end(), "purge for unknown packet");
    Pending& pending = it->second;
    FIFOMS_ASSERT(pending.remaining > 0, "packet purged too many times");
    ++copies_purged_;
    if (--pending.remaining == 0) pending_.erase(it);
  }

  if (!measured) return;
  ++measured_slots_;
  measured_copies_ += static_cast<std::uint64_t>(result.deliveries.size());

  std::size_t sum = 0;
  for (PortId port = 0; port < occupancy_ports_; ++port) {
    const std::size_t occupancy = sw.occupancy(port);
    sum += occupancy;
    queue_max_ = std::max(queue_max_, occupancy);
  }
  queue_mean_.add(static_cast<double>(sum) /
                  static_cast<double>(occupancy_ports_));

  rounds_all_.add(static_cast<double>(result.rounds));
  if (result.matched_pairs > 0) {
    rounds_busy_.add(static_cast<double>(result.rounds));
    rounds_hist_.add(result.rounds);
  }
}

const RunningStat& MetricsCollector::class_output_delay(int priority) const {
  static const RunningStat kEmpty;
  if (priority < 0 ||
      static_cast<std::size_t>(priority) >= class_output_delay_.size())
    return kEmpty;
  return class_output_delay_[static_cast<std::size_t>(priority)];
}

void MetricsCollector::save_state(snapshot::Writer& out) const {
  // Canonical form: the pending map sorted by packet id, so equal
  // collector states always serialise to equal bytes.
  std::vector<std::pair<PacketId, Pending>> pending(pending_.begin(),
                                                    pending_.end());
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(pending.size());
  for (const auto& [id, p] : pending) {
    out.u64(id);
    out.i64(p.arrival);
    out.i32(p.remaining);
    out.i32(p.priority);
  }
  snapshot::write_stat(out, input_delay_);
  snapshot::write_stat(out, output_delay_);
  out.u64(class_output_delay_.size());
  for (const RunningStat& stat : class_output_delay_)
    snapshot::write_stat(out, stat);
  snapshot::write_stat(out, queue_mean_);
  out.u64(queue_max_);
  snapshot::write_stat(out, rounds_all_);
  snapshot::write_stat(out, rounds_busy_);
  snapshot::write_histogram(out, rounds_hist_);
  snapshot::write_p2(out, output_delay_p99_);
  out.u64(packets_offered_);
  out.u64(copies_offered_);
  out.u64(packets_delivered_);
  out.u64(copies_delivered_);
  out.u64(copies_purged_);
  out.u64(measured_copies_);
  out.i64(measured_slots_);
}

void MetricsCollector::load_state(snapshot::Reader& in) {
  pending_.clear();
  const std::size_t count = in.length(snapshot::kMaxContainer);
  pending_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const PacketId id = in.u64();
    Pending p;
    p.arrival = in.i64();
    p.remaining = in.i32();
    p.priority = in.i32();
    if (p.remaining <= 0)
      throw snapshot::SnapshotError("pending packet with no remaining copies");
    if (!pending_.emplace(id, p).second)
      throw snapshot::SnapshotError("duplicate pending packet id");
  }
  snapshot::read_stat(in, input_delay_);
  snapshot::read_stat(in, output_delay_);
  class_output_delay_.resize(in.length(snapshot::kMaxContainer));
  for (RunningStat& stat : class_output_delay_) snapshot::read_stat(in, stat);
  snapshot::read_stat(in, queue_mean_);
  queue_max_ = in.u64();
  snapshot::read_stat(in, rounds_all_);
  snapshot::read_stat(in, rounds_busy_);
  snapshot::read_histogram(in, rounds_hist_);
  snapshot::read_p2(in, output_delay_p99_);
  packets_offered_ = in.u64();
  copies_offered_ = in.u64();
  packets_delivered_ = in.u64();
  copies_delivered_ = in.u64();
  copies_purged_ = in.u64();
  measured_copies_ = in.u64();
  measured_slots_ = in.i64();
}

double MetricsCollector::throughput(int num_outputs) const {
  if (measured_slots_ == 0) return 0.0;
  return static_cast<double>(measured_copies_) /
         (static_cast<double>(measured_slots_) *
          static_cast<double>(num_outputs));
}

}  // namespace fifoms
