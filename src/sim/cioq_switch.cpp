#include "sim/cioq_switch.hpp"

#include "fault/fault.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

CioqSwitch::CioqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
                       int speedup)
    : num_ports_(num_ports), speedup_(speedup),
      scheduler_(std::move(scheduler)), crossbar_(num_ports, num_ports) {
  FIFOMS_ASSERT(scheduler_ != nullptr, "CioqSwitch requires a scheduler");
  FIFOMS_ASSERT(speedup >= 1 && speedup <= num_ports,
                "speedup must be in [1, N]");
  label_ = std::string(scheduler_->name()) + "-s" + std::to_string(speedup);
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  outputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port) {
    inputs_.emplace_back(port, num_ports);
    outputs_.emplace_back(port);
  }
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
  scheduler_->reset(num_ports, num_ports);
}

bool CioqSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;
  inputs_[static_cast<std::size_t>(packet.input)].accept(packet);
  return true;
}

void CioqSwitch::step(SlotTime now, Rng& rng, SlotResult& result) {
  int total_rounds = 0;
  int crossed = 0;

  // S fabric phases: schedule + cross into the output FIFOs.  Under
  // faults every phase sees the same constraints; the output FIFOs of
  // dead ports keep buffering (hold semantics) but stop draining below.
  const bool faulted = faults_ != nullptr && faults_->active();
  ScheduleConstraints constraints;
  if (faulted) {
    constraints.failed_inputs = faults_->failed_inputs();
    constraints.failed_outputs = faults_->failed_outputs();
    constraints.failed_links = faults_->failed_links();
  }
  for (int phase = 0; phase < speedup_; ++phase) {
    matching_.reset(num_ports_, num_ports_);
    if (faulted) {
      scheduler_->schedule(inputs_, now, matching_, rng, constraints);
    } else {
      scheduler_->schedule(inputs_, now, matching_, rng);
    }
    matching_.validate();
    if (matching_.matched_pairs() == 0) break;  // nothing left to cross
    crossbar_.configure(matching_.input_grant_sets());

    for (PortId input = 0; input < num_ports_; ++input) {
      const PortSet& targets = crossbar_.outputs_for_input(input);
      if (targets.empty()) continue;
      McVoqInput& port = inputs_[static_cast<std::size_t>(input)];
      for (PortId output : targets) {
        const McVoqInput::Served served = port.serve_hol(output);
        outputs_[static_cast<std::size_t>(output)].push(OutputCell{
            .packet = served.cell.packet,
            .input = input,
            .arrival = served.cell.timestamp,
            .payload_tag = served.payload_tag,
        });
        ++crossed;
      }
    }
    crossbar_.release();
    total_rounds += matching_.rounds;
  }

  // Line side: each output transmits one cell per slot (a failed output's
  // line is silent until it recovers).
  for (PortId output = 0; output < num_ports_; ++output) {
    if (faulted && faults_->failed_outputs().contains(output)) continue;
    OutputFifo& queue = outputs_[static_cast<std::size_t>(output)];
    if (queue.empty()) continue;
    const OutputCell cell = queue.pop();
    result.deliveries.push_back(Delivery{
        .packet = cell.packet,
        .input = cell.input,
        .output = output,
        .arrival = cell.arrival,
        .payload_tag = cell.payload_tag,
    });
  }

  result.rounds = total_rounds;
  result.matched_pairs = crossed;
}

std::size_t CioqSwitch::occupancy(PortId port) const {
  return input(port).data_cell_count();
}

std::size_t CioqSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& port : inputs_) total += port.data_cell_count();
  for (const auto& queue : outputs_) total += queue.size();
  return total;
}

void CioqSwitch::clear() {
  for (auto& port : inputs_) port.clear();
  for (auto& queue : outputs_) queue.clear();
  for (auto& slot : last_arrival_slot_) slot = -1;
  scheduler_->reset(num_ports_, num_ports_);
}

std::size_t CioqSwitch::output_occupancy(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "output out of range");
  return outputs_[static_cast<std::size_t>(port)].size();
}

const McVoqInput& CioqSwitch::input(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "input out of range");
  return inputs_[static_cast<std::size_t>(port)];
}


void CioqSwitch::save_state(snapshot::Writer& out) const {
  for (SlotTime slot : last_arrival_slot_) out.i64(slot);
  for (const McVoqInput& port : inputs_) snapshot::write_mc_voq(out, port);
  for (const OutputFifo& port : outputs_) {
    const std::vector<OutputCell> cells = port.cells();
    out.u64(cells.size());
    for (const OutputCell& cell : cells) snapshot::write_output_cell(out, cell);
  }
  scheduler_->save_state(out);
}

void CioqSwitch::load_state(snapshot::Reader& in) {
  for (SlotTime& slot : last_arrival_slot_) slot = in.i64();
  for (McVoqInput& port : inputs_) snapshot::read_mc_voq(in, port);
  for (OutputFifo& port : outputs_) {
    port.clear();
    const std::size_t count = in.length(snapshot::kMaxContainer);
    for (std::size_t i = 0; i < count; ++i)
      port.push(snapshot::read_output_cell(in));
  }
  scheduler_->load_state(in);
}

}  // namespace fifoms
