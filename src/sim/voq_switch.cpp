#include "sim/voq_switch.hpp"

namespace fifoms {

VoqSwitch::VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler)
    : VoqSwitch(num_ports, std::move(scheduler), Options{}) {}

VoqSwitch::VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
                     Options options)
    : num_ports_(num_ports), scheduler_(std::move(scheduler)),
      options_(options), crossbar_(num_ports, num_ports) {
  FIFOMS_ASSERT(scheduler_ != nullptr, "VoqSwitch requires a scheduler");
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port)
    inputs_.emplace_back(port, num_ports, options_.num_classes);
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
  scheduler_->reset(num_ports, num_ports);
}

bool VoqSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;
  McVoqInput& port = inputs_[static_cast<std::size_t>(packet.input)];
  if (options_.input_capacity > 0 &&
      port.data_cell_count() >= options_.input_capacity) {
    ++dropped_;  // input buffer full: the whole packet is lost
    return false;
  }
  port.accept(packet);
  return true;
}

void VoqSwitch::step(SlotTime now, Rng& rng, SlotResult& result) {
  matching_.reset(num_ports_, num_ports_);
  scheduler_->schedule(inputs_, now, matching_, rng);
  matching_.validate();
  crossbar_.configure(matching_.input_grant_sets());

  // Transmit: serve the HOL address cell of every matched (input, output)
  // pair.  All cells served by one input must share one data cell — the
  // crossbar can only broadcast a single cell per input row.
  for (PortId input = 0; input < num_ports_; ++input) {
    const PortSet& targets = crossbar_.outputs_for_input(input);
    if (targets.empty()) continue;
    McVoqInput& port = inputs_[static_cast<std::size_t>(input)];
    DataCellRef expected;
    for (PortId output : targets) {
      FIFOMS_ASSERT(!port.voq_empty(output),
                    "matching granted an empty VOQ");
      const DataCellRef ref = port.hol(output).data;
      if (!expected.valid()) {
        expected = ref;
      } else {
        FIFOMS_ASSERT(ref == expected,
                      "input scheduled to send two different data cells");
      }
      const McVoqInput::Served served = port.serve_hol(output);
      result.deliveries.push_back(Delivery{
          .packet = served.cell.packet,
          .input = input,
          .output = output,
          .arrival = served.cell.timestamp,
          .payload_tag = served.payload_tag,
      });
    }
  }
  crossbar_.release();

  result.rounds = matching_.rounds;
  result.matched_pairs = matching_.matched_pairs();
}

std::size_t VoqSwitch::occupancy(PortId port) const {
  return input(port).data_cell_count();
}

std::size_t VoqSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& port : inputs_) total += port.data_cell_count();
  return total;
}

void VoqSwitch::clear() {
  for (auto& port : inputs_) port.clear();
  for (auto& slot : last_arrival_slot_) slot = -1;
  dropped_ = 0;
  scheduler_->reset(num_ports_, num_ports_);
}

const McVoqInput& VoqSwitch::input(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "input out of range");
  return inputs_[static_cast<std::size_t>(port)];
}

}  // namespace fifoms
