#include "sim/voq_switch.hpp"

#include "fault/fault.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

VoqSwitch::VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler)
    : VoqSwitch(num_ports, std::move(scheduler), Options{}) {}

VoqSwitch::VoqSwitch(int num_ports, std::unique_ptr<VoqScheduler> scheduler,
                     Options options)
    : num_ports_(num_ports), scheduler_(std::move(scheduler)),
      options_(options), crossbar_(num_ports, num_ports) {
  FIFOMS_ASSERT(scheduler_ != nullptr, "VoqSwitch requires a scheduler");
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port)
    inputs_.emplace_back(port, num_ports, options_.num_classes);
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
  scheduler_->reset(num_ports, num_ports);
}

bool VoqSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;
  McVoqInput& port = inputs_[static_cast<std::size_t>(packet.input)];
  if (options_.input_capacity > 0 &&
      port.data_cell_count() >= options_.input_capacity) {
    ++dropped_;  // input buffer full: the whole packet is lost
    return false;
  }
  port.accept(packet);
  return true;
}

// fifoms-analyze: hot-path-root
void VoqSwitch::step(SlotTime now, Rng& rng, SlotResult& result) {
  const bool faulted = faults_ != nullptr && faults_->active();
  if (faulted && options_.stranded_policy == StrandedCellPolicy::kPurge)
    purge_stranded_cells(result);

  matching_.reset(num_ports_, num_ports_);
  const bool masked = faulted && !options_.mutant_skip_fault_masking;
  const bool pressured =
      backpressure_ != nullptr && !backpressure_->empty();
  if (masked || pressured) {
    ScheduleConstraints constraints;
    if (masked) {
      constraints.failed_inputs = faults_->failed_inputs();
      constraints.failed_outputs = faults_->failed_outputs();
      constraints.failed_links = faults_->failed_links();
    }
    // A paused output (downstream inter-stage buffer full) is masked
    // exactly like a failed one for this slot, but without the purge or
    // sanitize machinery: the cells just wait.
    if (pressured) constraints.failed_outputs |= *backpressure_;
    // The scheduler seam is the one sanctioned dispatch on this path:
    // every VoqScheduler::schedule implementation carries its own
    // hot-path-root tag, so the analyzer walks the callees directly.
    // fifoms-analyze: allow(hot-path-no-virtual)
    scheduler_->schedule(inputs_, now, matching_, rng, constraints);
  } else {
    // No active faults (or the test mutant): the fault-free path must
    // stay bit-identical to the pre-fault behaviour, RNG draws included.
    // fifoms-analyze: allow(hot-path-no-virtual) — same seam as above
    scheduler_->schedule(inputs_, now, matching_, rng);
  }
  matching_.validate();
  if (faulted) {
    apply_grant_corruption(now);
    if (!options_.mutant_skip_fault_masking) sanitize_matching();
    matching_.validate();
  }
  crossbar_.configure(matching_.input_grant_sets());

  // Transmit: serve the HOL address cell of every matched (input, output)
  // pair.  All cells served by one input must share one data cell — the
  // crossbar can only broadcast a single cell per input row.  Only the
  // inputs holding grants are visited (word-parallel bitset walk); on a
  // lightly loaded switch that skips almost every port.
  for (PortId input : matching_.matched_input_set()) {
    const PortSet& targets = crossbar_.outputs_for_input(input);
    FIFOMS_DASSERT(!targets.empty(),
                   "matched input with no configured crossbar row");
    McVoqInput& port = inputs_[static_cast<std::size_t>(input)];
    DataCellRef expected;
    for (PortId output : targets) {
      // serve_hol() itself panics on an empty VOQ; comparing the served
      // cell's data handle (handles are not reused within a slot) keeps
      // the one-cell-per-row constraint checked without a separate hol()
      // probe per grant.
      const McVoqInput::Served served = port.serve_hol(output);
      if (!expected.valid()) {
        expected = served.cell.data;
      } else {
        FIFOMS_ASSERT(served.cell.data == expected,
                      "input scheduled to send two different data cells");
      }
      result.deliveries.push_back(Delivery{
          .packet = served.cell.packet,
          .input = input,
          .output = output,
          .arrival = served.cell.timestamp,
          .payload_tag = served.payload_tag,
      });
    }
  }
  crossbar_.release();

  result.rounds = matching_.rounds;
  result.matched_pairs = matching_.matched_pairs();
}

void VoqSwitch::set_fault_state(const fault::FaultState* faults) {
  faults_ = faults;
}

void VoqSwitch::purge_stranded_cells(SlotResult& result) {
  const PortSet& dead = faults_->failed_outputs();
  if (dead.empty()) return;
  for (auto& port : inputs_) {
    if (!port.occupied().intersects(dead)) continue;
    for (PortId output : dead) {
      purge_scratch_.clear();
      port.purge_output(output, purge_scratch_);
      for (const McVoqInput::Served& served : purge_scratch_) {
        result.purged.push_back(Delivery{
            .packet = served.cell.packet,
            .input = port.port(),
            .output = output,
            .arrival = served.cell.timestamp,
            .payload_tag = served.payload_tag,
        });
      }
    }
  }
}

void VoqSwitch::apply_grant_corruption(SlotTime now) {
  // A corrupted grant wire re-routes one output's grant to an arbitrary
  // input (or drops it).  The choice is a pure function of the fault
  // plan's seed — the scheduler's RNG stream is never consulted, so a
  // corrupted run stays replayable and the fault-free prefix of the
  // stream stays untouched.
  const auto corruptions = faults_->grant_corruptions();
  for (std::size_t k = 0; k < corruptions.size(); ++k) {
    const std::uint64_t salt = faults_->corruption_salt(now, k);
    const auto n = static_cast<std::uint64_t>(num_ports_);
    const auto output = static_cast<PortId>(salt % n);
    const auto input = static_cast<PortId>((salt >> 20) % n);
    const PortId previous = matching_.source(output);
    if (previous != kNoPort) matching_.remove_match(previous, output);
    const bool rerouted = ((salt >> 40) & 1U) != 0;
    if (rerouted && matching_.source(output) == kNoPort)
      matching_.add_match(input, output);
  }
}

void VoqSwitch::sanitize_matching() {
  // First pass: drop grants that reference a dead port, a dead link or an
  // empty VOQ (grant corruption can produce any of these).  Both passes
  // walk the matched bitsets (copies: remove_match() mutates the
  // originals mid-iteration), not the full port range.
  const PortSet matched_outputs = matching_.matched_outputs();
  for (PortId output : matched_outputs) {
    const PortId input = matching_.source(output);
    const bool dead = faults_->failed_outputs().contains(output) ||
                      faults_->failed_inputs().contains(input) ||
                      faults_->link_failed(input, output) ||
                      inputs_[static_cast<std::size_t>(input)].voq_empty(
                          output);
    if (dead) matching_.remove_match(input, output);
  }
  // Second pass: one input drives the crossbar with one data cell; if a
  // corrupted grant points an input at a second cell, keep the grants of
  // the lowest-numbered output's cell and shed the rest.
  const PortSet matched_inputs = matching_.matched_input_set();
  for (PortId input : matched_inputs) {
    const PortSet grants = matching_.grants(input);  // copy: we mutate below
    if (grants.count() <= 1) continue;
    const McVoqInput& port = inputs_[static_cast<std::size_t>(input)];
    DataCellRef expected;
    for (PortId output : grants) {
      const DataCellRef ref = port.hol(output).data;
      if (!expected.valid()) {
        expected = ref;
      } else if (!(ref == expected)) {
        matching_.remove_match(input, output);
      }
    }
  }
}

std::size_t VoqSwitch::occupancy(PortId port) const {
  return input(port).data_cell_count();
}

std::size_t VoqSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& port : inputs_) total += port.data_cell_count();
  return total;
}

void VoqSwitch::clear() {
  for (auto& port : inputs_) port.clear();
  for (auto& slot : last_arrival_slot_) slot = -1;
  dropped_ = 0;
  scheduler_->reset(num_ports_, num_ports_);
}

void VoqSwitch::save_state(snapshot::Writer& out) const {
  out.u64(dropped_);
  for (SlotTime slot : last_arrival_slot_) out.i64(slot);
  // The queue structure is saved as each input's unserved-packet list;
  // inject_queue_state() rebuilds data cells, address cells, weight
  // planes and the global-min carrier from it bit-exactly.  Crossbar and
  // matching are per-slot scratch and carry no cross-slot state.
  for (const McVoqInput& port : inputs_) snapshot::write_mc_voq(out, port);
  scheduler_->save_state(out);
}

void VoqSwitch::load_state(snapshot::Reader& in) {
  dropped_ = in.u64();
  for (SlotTime& slot : last_arrival_slot_) slot = in.i64();
  for (McVoqInput& port : inputs_) snapshot::read_mc_voq(in, port);
  scheduler_->load_state(in);
}

const McVoqInput& VoqSwitch::input(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "input out of range");
  return inputs_[static_cast<std::size_t>(port)];
}

}  // namespace fifoms
