#include "core/matching.hpp"

#include "common/panic.hpp"

// validate() is an O(N) audit of redundant views, called once or twice per
// slot by every switch model.  It rides the same knob as the runtime
// auditor: compiled out when FIFOMS_AUDIT is 0 (the Release preset).  The
// fallback mirrors analysis/auditor.hpp for standalone header consumers.
#ifndef FIFOMS_AUDIT
#ifdef NDEBUG
#define FIFOMS_AUDIT 0
#else
#define FIFOMS_AUDIT 1
#endif
#endif

namespace fifoms {

void SlotMatching::reset(int num_inputs, int num_outputs) {
  FIFOMS_ASSERT(num_inputs > 0 && num_outputs > 0, "empty switch");
  // Steady state re-assigns the same sizes, so these reuse capacity and
  // never allocate after the first slot of a switch size.
  // fifoms-analyze: allow(hot-path-no-alloc)
  input_grants_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
  // fifoms-analyze: allow(hot-path-no-alloc)
  output_source_.assign(static_cast<std::size_t>(num_outputs), kNoPort);
  matched_outputs_.clear();
  matched_inputs_.clear();
  matched_pairs_ = 0;
  rounds = 0;
}

void SlotMatching::add_match(PortId input, PortId output) {
  FIFOMS_ASSERT(input >= 0 && input < num_inputs(), "input out of range");
  FIFOMS_ASSERT(output >= 0 && output < num_outputs(), "output out of range");
  PortId& source = output_source_[static_cast<std::size_t>(output)];
  FIFOMS_ASSERT(source == kNoPort, "output granted twice in one slot");
  source = input;
  input_grants_[static_cast<std::size_t>(input)].insert(output);
  matched_outputs_.insert(output);
  matched_inputs_.insert(input);
  ++matched_pairs_;
}

void SlotMatching::remove_match(PortId input, PortId output) {
  FIFOMS_ASSERT(input >= 0 && input < num_inputs(), "input out of range");
  FIFOMS_ASSERT(output >= 0 && output < num_outputs(), "output out of range");
  PortId& source = output_source_[static_cast<std::size_t>(output)];
  FIFOMS_ASSERT(source == input, "remove_match of a pair that is not matched");
  source = kNoPort;
  PortSet& grants = input_grants_[static_cast<std::size_t>(input)];
  grants.erase(output);
  if (grants.empty()) matched_inputs_.erase(input);
  matched_outputs_.erase(output);
  --matched_pairs_;
}

PortId SlotMatching::source(PortId output) const {
  FIFOMS_ASSERT(output >= 0 && output < num_outputs(), "output out of range");
  return output_source_[static_cast<std::size_t>(output)];
}

const PortSet& SlotMatching::grants(PortId input) const {
  FIFOMS_ASSERT(input >= 0 && input < num_inputs(), "input out of range");
  return input_grants_[static_cast<std::size_t>(input)];
}

void SlotMatching::validate() const {
#if !FIFOMS_AUDIT
  return;
#else
  int pairs = 0;
  // The audit deliberately probes every port, matched or not — absent
  // matches are half of what the redundant views can disagree about.
  // It is compiled out in Release (FIFOMS_AUDIT above), so the per-port
  // walk never reaches the measured configuration.
  // fifoms-analyze: allow(hot-path-no-port-loop)
  for (PortId output = 0; output < num_outputs(); ++output) {
    const PortId input = source(output);
    if (input == kNoPort) continue;
    FIFOMS_ASSERT(input >= 0 && input < num_inputs(),
                  "matching references unknown input");
    FIFOMS_ASSERT(grants(input).contains(output),
                  "output source not mirrored in input grants");
    ++pairs;
  }
  int granted = 0;
  // fifoms-analyze: allow(hot-path-no-port-loop) — audit-only, see above
  for (PortId input = 0; input < num_inputs(); ++input) {
    granted += grants(input).count();
    FIFOMS_ASSERT(grants(input).empty() != matched_inputs_.contains(input),
                  "matched_inputs bitset disagrees with input grants");
  }
  FIFOMS_ASSERT(granted == pairs && pairs == matched_pairs_,
                "matching views disagree");
  FIFOMS_ASSERT(matched_outputs_.count() == pairs,
                "matched_outputs bitset disagrees with output sources");
  for (PortId output : matched_outputs_)
    FIFOMS_ASSERT(source(output) != kNoPort,
                  "matched_outputs bit without an output source");
#endif
}

}  // namespace fifoms
