// SlotMatching: the output of one slot's scheduling decision.
//
// Both scheduler families (VOQ-based and HOL-based) produce the same
// artefact: for each input the set of outputs it will drive, and for each
// output the input driving it.  The two views are kept redundantly —
// schedulers fill them via add_match(), and validate() cross-checks them,
// which catches a whole class of scheduler bugs (double grants, dangling
// reservations) at the point of the mistake.
#pragma once

#include <vector>

#include "common/port_set.hpp"
#include "common/types.hpp"

namespace fifoms {

class SlotMatching {
 public:
  SlotMatching() = default;
  SlotMatching(int num_inputs, int num_outputs) {
    reset(num_inputs, num_outputs);
  }

  void reset(int num_inputs, int num_outputs);

  int num_inputs() const { return static_cast<int>(input_grants_.size()); }
  int num_outputs() const { return static_cast<int>(output_source_.size()); }

  /// Record that `output` will receive from `input` this slot.
  /// Panics if the output is already taken.
  void add_match(PortId input, PortId output);

  /// Undo add_match(input, output) — used by the fault layer to drop
  /// grants that reference a dead port (sanitisation after transient
  /// grant corruption).  Panics if the pair is not currently matched.
  void remove_match(PortId input, PortId output);

  bool output_matched(PortId output) const {
    return source(output) != kNoPort;
  }
  bool input_matched(PortId input) const {
    return matched_inputs_.contains(input);
  }

  PortId source(PortId output) const;
  const PortSet& grants(PortId input) const;

  /// All per-input grant sets (e.g. for Crossbar::configure).
  const std::vector<PortSet>& input_grant_sets() const {
    return input_grants_;
  }

  /// Outputs that already have a source this slot, as a bitset.
  /// Maintained incrementally by add_match()/remove_match()/reset(), so
  /// schedulers can mask "still free" outputs word-parallel instead of
  /// probing output_matched() per port.
  const PortSet& matched_outputs() const { return matched_outputs_; }

  /// Inputs that hold at least one grant this slot, as a bitset.
  /// Maintained incrementally like matched_outputs(), so the transmit
  /// loop and the fault sanitiser can walk only the transmitting inputs
  /// word-parallel instead of probing every port.
  const PortSet& matched_input_set() const { return matched_inputs_; }

  /// Total matched (input, output) pairs, i.e. copies transmitted.
  int matched_pairs() const { return matched_pairs_; }

  /// Number of distinct inputs transmitting.
  int matched_inputs() const { return matched_inputs_.count(); }

  /// Iterative rounds the scheduler used to build this matching
  /// (the paper's "convergence rounds"); 1 for single-shot schedulers.
  int rounds = 0;

  /// Cross-check the redundant views; panics on inconsistency.
  void validate() const;

 private:
  std::vector<PortSet> input_grants_;
  std::vector<PortId> output_source_;
  PortSet matched_outputs_;
  PortSet matched_inputs_;
  int matched_pairs_ = 0;
};

}  // namespace fifoms
