// FIFOMS — First-In-First-Out Multicast Scheduling (paper Section III).
//
// FIFOMS is an iterative request/grant scheduler on the multicast VOQ
// switch.  Each round:
//
//   Request — every *free* input (not yet granted this slot) finds the
//   smallest time stamp among the HOL address cells of its VOQs whose
//   output is still free, and all HOL cells carrying that time stamp send
//   a request to their output, weighted by the time stamp.  Because at
//   most one packet arrives per input per slot, equal time stamps at one
//   input always identify the *same* multicast packet, hence the same data
//   cell — which is why FIFOMS needs no accept step: an input can never be
//   asked to transmit two different data cells.
//
//   Grant — every free output grants the request with the smallest time
//   stamp (ties broken randomly, or by lowest input index when
//   configured).  Several outputs granting the same input in the same
//   round is the multicast win: one data cell crosses the fabric to all of
//   them simultaneously.
//
// Rounds repeat until no free input/output pair can still match.  Address
// cells that lose stay at the head of their VOQs — fanout splitting across
// slots falls out for free.  The time-stamp weight makes earlier packets
// win everywhere they compete, which is both the fairness guarantee
// (starvation-free: a cell is served once every strictly earlier
// competitor is) and the mechanism that aligns the outputs' independent
// decisions on the same multicast packet.
//
// Two implementations share this contract:
//
//   FifomsScheduler — the production kernel.  The request step reads the
//   inputs' HOL *weight planes* (contiguous per-output weight arrays
//   maintained by McVoqInput) with word-parallel masked scans, and caches
//   each input's request mask across rounds: within a slot the queues are
//   frozen and free_outputs only shrinks, so as long as a cached mask
//   still intersects the free outputs, the cached minimum is still the
//   minimum and the surviving mask bits are exactly the new requests.
//   Unchanged inputs therefore cost O(PortSet::kWords) per round.
//
//   FifomsReferenceScheduler — the original ring-buffer-probing
//   implementation, kept verbatim as the differential-testing oracle.
//   Both produce bit-identical matchings, round counts and RNG draw
//   sequences (tests/core/fifoms_kernel_diff_test.cpp and the FIFOMS_FUZZ
//   harness enforce this on random states, tie-break policies and fault
//   constraints).
#pragma once

#include <limits>
#include <vector>

#include "common/scratch_arena.hpp"
#include "sched/voq_scheduler.hpp"

namespace fifoms {

/// Tie-breaking rule used by an output choosing among equally old requests.
enum class TieBreak {
  kRandom,       ///< paper behaviour: uniformly random among the oldest
  kLowestInput,  ///< deterministic: lowest input index (ablation A4)
};

struct FifomsOptions {
  /// Maximum request/grant rounds per slot; 0 = iterate to convergence
  /// (the paper's setting; worst case N rounds).
  int max_rounds = 0;
  TieBreak tie_break = TieBreak::kRandom;
};

class FifomsScheduler final : public VoqScheduler {
 public:
  explicit FifomsScheduler(FifomsOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "FIFOMS"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

  const FifomsOptions& options() const { return options_; }

 private:
  FifomsOptions options_;
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  // Per-slot scratch (request-mask/minimum cache per input, best weight
  // and candidate set per output), bump-allocated from one reservation
  // sized in reset() — the per-slot path never touches the heap.
  ScratchArena arena_;
};

/// The pre-weight-plane FIFOMS implementation: per-(input, output) HOL
/// ring-buffer probes, no cross-round caching.  Kept as the independent
/// oracle the kernel is differentially tested against; also handy when
/// bisecting a suspected kernel regression.  Not registered as a
/// simulation scheduler — construct it directly.
class FifomsReferenceScheduler final : public VoqScheduler {
 public:
  explicit FifomsReferenceScheduler(FifomsOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "FIFOMS-ref"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

  const FifomsOptions& options() const { return options_; }

 private:
  FifomsOptions options_;
  int num_outputs_ = 0;
  ScratchArena arena_;
};

/// Ablation variant (bench A1): fanout splitting disabled.  A packet may
/// only be scheduled when *all* of its remaining destinations are free,
/// and it then occupies all of them at once.  Implemented as a centralised
/// greedy pass in global time-stamp order (ties randomised), which is the
/// natural all-or-nothing counterpart of FIFOMS's FIFO rule.  The paper
/// (Section VI) asserts fanout splitting is necessary for high multicast
/// throughput; this scheduler quantifies that claim.
class FifomsNoSplitScheduler final : public VoqScheduler {
 public:
  std::string_view name() const override { return "FIFOMS-nosplit"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

 private:
  struct Entry {
    std::uint64_t weight;
    std::uint64_t shuffle_key;
    PortId input;
  };
  std::vector<Entry> order_;
};

}  // namespace fifoms
