// Word-parallel kernel file: the scheduling hot path must stay free of
// per-port indexed loops.  Enforced semantically by tools/analyzer/
// (rule hot-path-no-port-loop) from the hot-path-root tags below;
// the old textual kernel-file marker is retired.
#include "core/fifoms.hpp"

#include <algorithm>
#include <bit>

#include "sched/kernels.hpp"

namespace fifoms {

void FifomsScheduler::reset(int num_inputs, int num_outputs) {
  num_inputs_ = num_inputs;
  num_outputs_ = num_outputs;
  const auto n_in = static_cast<std::size_t>(num_inputs);
  const auto n_out = static_cast<std::size_t>(num_outputs);
  arena_.reserve(ScratchArena::bytes_for<std::uint64_t>(n_in) +
                 ScratchArena::bytes_for<PortSet>(n_in) +
                 ScratchArena::bytes_for<std::uint64_t>(n_out) +
                 ScratchArena::bytes_for<PortSet>(n_out));
}

// fifoms-analyze: hot-path-root
void FifomsScheduler::schedule(std::span<const McVoqInput> inputs,
                               SlotTime /*now*/, SlotMatching& matching,
                               Rng& rng,
                               const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(num_inputs_ == num_inputs && num_outputs_ == num_outputs,
                "FifomsScheduler::reset not called for this switch size");

  arena_.rewind();
  // Per-input cache of the last computed request state: the minimum HOL
  // weight among then-eligible outputs, and the mask of outputs carrying
  // it.  Valid from one round to the next because queues are frozen
  // during a slot and free_outputs only ever shrinks — see below.
  auto input_min = arena_.take<std::uint64_t>(
      static_cast<std::size_t>(num_inputs));
  auto request_mask = arena_.take<PortSet>(
      static_cast<std::size_t>(num_inputs));
  // Smallest requesting weight per output, and the set of inputs carrying
  // it; both are only valid for outputs in `requested` this round.
  auto best_weight = arena_.take<std::uint64_t>(
      static_cast<std::size_t>(num_outputs));
  auto candidates = arena_.take<PortSet>(
      static_cast<std::size_t>(num_outputs));

  // The matching arrives cleared (scheduler contract), so every port
  // starts free; grants peel bits off these masks as rounds progress.
  // Failed ports never enter the masks: a dead input sends no requests
  // and a dead output collects none, so degradation is just smaller
  // request/grant sets — the round structure is untouched.
  PortSet free_inputs = PortSet::all(num_inputs) - constraints.failed_inputs;
  PortSet free_outputs =
      PortSet::all(num_outputs) - constraints.failed_outputs;
  const bool link_faults = !constraints.failed_links.empty();
  PortSet requested;

  int rounds = 0;
  bool first_round = true;
  while (options_.max_rounds == 0 || rounds < options_.max_rounds) {
    // ---- Request step -------------------------------------------------
    // Each free input selects the HOL address cells with the smallest time
    // stamp among VOQs whose output is still free; those cells request
    // their outputs with the time stamp as weight.  The scan reads the
    // input's weight plane (contiguous, kWeightInfinity for empty VOQs)
    // word by word, masked by occupied() & free_outputs.
    requested.clear();
    for (PortId input : free_inputs) {
      const auto i = static_cast<std::size_t>(input);
      PortSet& mask = request_mask[i];

      // Cache revalidation: the cached mask held the outputs at this
      // input's minimum weight among the then-free outputs.  Shrinking
      // free_outputs can only remove eligible outputs, so the true
      // minimum can only rise.  If any cached-minimum output is still
      // free, the minimum is unchanged and the surviving bits are
      // exactly this round's requests — no rescan.
      bool have_requests = false;
      if (!first_round) {
        mask &= free_outputs;
        have_requests = !mask.empty();
      }

      if (!have_requests) {
        const McVoqInput& port = inputs[i];

        // Fabric fast path: the input's global HOL minimum and carrier
        // mask are maintained by McVoqInput across slots.  Whenever any
        // global-minimum output is still eligible, the minimum over the
        // eligible set *is* the global minimum, and the outputs carrying
        // it are exactly `carriers ∩ eligible` (carriers ⊆ occupied(),
        // so intersecting with free_outputs − link faults suffices).
        // This skips the plane scan entirely in the common case; the
        // full reduction below only runs when every minimum carrier has
        // been matched or faulted away.
        mask = port.hol_min_outputs();
        mask &= free_outputs;
        if (link_faults) mask -= constraints.link_faults(input);
        if (!mask.empty()) {
          input_min[i] = port.hol_min_weight();
          have_requests = true;
        }
        // An empty mask falls through to the full reduction, which
        // rewrites every mask word — the clobber here is harmless.
      }

      if (!have_requests) {
        const McVoqInput& port = inputs[i];
        PortSet eligible = port.occupied() & free_outputs;
        if (link_faults) eligible -= constraints.link_faults(input);
        // Masked min-reduction over the plane (statically proven against
        // the dense spec — see tests/sched/kernel_static_proof.cpp).
        // Only words with eligible bits are touched; the plane's
        // 64-entry padding guarantees addressability for every such word.
        const std::uint64_t smallest =
            kernels::masked_min(port.hol_weights(), eligible);
        if (smallest == kWeightInfinity) {
          // No eligible VOQ.  Queues are frozen and free_outputs only
          // shrinks, so this input cannot become eligible later in the
          // slot — drop it so subsequent rounds skip it entirely.
          // (Erasing the current element is safe: iteration advances via
          // next_after, which only inspects strictly larger bits.)
          free_inputs.erase(input);
          continue;
        }

        // Word-parallel equality scan: the eligible outputs at the
        // minimum become this input's request mask.
        input_min[i] = smallest;
        mask = kernels::equality_scan(port.hol_weights(), eligible, smallest);
      }

      // Deliver the requests to their outputs.  All of an input's
      // requests this round share one weight (its minimum), matching the
      // reference's per-output candidate bookkeeping bit for bit.  The
      // first-request / contested split is resolved per word against
      // `requested`, so the common case (a fresh output) skips the
      // per-output weight compare entirely.
      const std::uint64_t weight = input_min[i];
      const auto& mask_words = mask.words();
      for (int w = 0; w < PortSet::kWords; ++w) {
        const std::uint64_t bits = mask_words[static_cast<std::size_t>(w)];
        if (!bits) continue;
        const std::uint64_t seen = requested.words()[static_cast<std::size_t>(w)];
        requested.set_word(w, seen | bits);
        std::uint64_t fresh = bits & ~seen;
        while (fresh) {
          const int b = std::countr_zero(fresh);
          fresh &= fresh - 1;
          const auto o = static_cast<std::size_t>((w << 6) + b);
          best_weight[o] = weight;
          candidates[o] = PortSet::single(input);
        }
        std::uint64_t contested = bits & seen;
        while (contested) {
          const int b = std::countr_zero(contested);
          contested &= contested - 1;
          const auto o = static_cast<std::size_t>((w << 6) + b);
          if (weight < best_weight[o]) {
            best_weight[o] = weight;
            candidates[o] = PortSet::single(input);
          } else if (weight == best_weight[o]) {
            candidates[o].insert(input);
          }
        }
      }
    }
    if (requested.empty()) break;  // converged: no free pair can match
    ++rounds;
    first_round = false;

    // ---- Grant step ----------------------------------------------------
    // Every output with requests grants the smallest time stamp; ties are
    // broken per the configured policy.  Grants are based purely on the
    // requests collected above, so the outputs decide independently; an
    // input may collect several grants (multicast transmission).
    for (PortId output : requested) {
      const PortSet& cands = candidates[static_cast<std::size_t>(output)];
      PortId winner;
      if (options_.tie_break != TieBreak::kRandom || cands.count() == 1) {
        // Lowest-input policy, or the single-requester fast path: a lone
        // request needs no arbitration (and burns no RNG draw).
        winner = cands.first();
      } else {
        winner = cands.random_member(rng);
      }
      matching.add_match(winner, output);
      free_outputs.erase(output);
      free_inputs.erase(winner);
    }
  }

  matching.rounds = rounds;
}

void FifomsReferenceScheduler::reset(int num_inputs, int num_outputs) {
  (void)num_inputs;
  num_outputs_ = num_outputs;
  const auto n = static_cast<std::size_t>(num_outputs);
  arena_.reserve(ScratchArena::bytes_for<std::uint64_t>(n) +
                 ScratchArena::bytes_for<PortSet>(n) +
                 ScratchArena::bytes_for<std::uint64_t>(n));
}

// The original implementation, unchanged: two hol() probing passes per
// input per round, no cross-round caching.  This is the oracle the
// weight-plane kernel above is differentially tested against, so keep it
// boring — clarity over speed.
// fifoms-lint: allow(no-per-port-loop-in-kernel) — oracle, not hot path.
// fifoms-analyze: hot-path-root
void FifomsReferenceScheduler::schedule(std::span<const McVoqInput> inputs,
                                        SlotTime /*now*/,
                                        SlotMatching& matching, Rng& rng,
                                        const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(num_outputs_ == num_outputs,
                "FifomsReferenceScheduler::reset not called for this size");

  arena_.rewind();
  const auto n = static_cast<std::size_t>(num_outputs);
  auto best_weight = arena_.take<std::uint64_t>(n);
  auto candidates = arena_.take<PortSet>(n);
  // HOL-weight cache for the input currently scanning (two passes per
  // input: find the minimum, then emit requests at that minimum).
  auto hol_weight = arena_.take<std::uint64_t>(n);

  PortSet free_inputs = PortSet::all(num_inputs) - constraints.failed_inputs;
  PortSet free_outputs =
      PortSet::all(num_outputs) - constraints.failed_outputs;
  const bool link_faults = !constraints.failed_links.empty();
  PortSet requested;

  int rounds = 0;
  while (options_.max_rounds == 0 || rounds < options_.max_rounds) {
    requested.clear();
    for (PortId input : free_inputs) {
      const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
      PortSet eligible = port.occupied() & free_outputs;
      if (link_faults) eligible -= constraints.link_faults(input);

      std::uint64_t smallest = kWeightInfinity;
      for (PortId output : eligible) {
        const std::uint64_t weight = port.hol(output).weight;
        hol_weight[static_cast<std::size_t>(output)] = weight;
        smallest = std::min(smallest, weight);
      }
      if (smallest == kWeightInfinity)
        continue;  // nothing eligible at this input

      for (PortId output : eligible) {
        if (hol_weight[static_cast<std::size_t>(output)] != smallest)
          continue;
        const auto o = static_cast<std::size_t>(output);
        if (!requested.contains(output)) {
          requested.insert(output);
          best_weight[o] = smallest;
          candidates[o] = PortSet::single(input);
        } else if (smallest < best_weight[o]) {
          best_weight[o] = smallest;
          candidates[o] = PortSet::single(input);
        } else if (smallest == best_weight[o]) {
          candidates[o].insert(input);
        }
      }
    }
    if (requested.empty()) break;
    ++rounds;

    for (PortId output : requested) {
      const PortSet& cands = candidates[static_cast<std::size_t>(output)];
      PortId winner;
      if (options_.tie_break != TieBreak::kRandom || cands.count() == 1) {
        winner = cands.first();
      } else {
        winner = cands.random_member(rng);
      }
      matching.add_match(winner, output);
      free_outputs.erase(output);
      free_inputs.erase(winner);
    }
  }

  matching.rounds = rounds;
}

void FifomsNoSplitScheduler::reset(int /*num_inputs*/, int /*num_outputs*/) {}

void FifomsNoSplitScheduler::schedule(std::span<const McVoqInput> inputs,
                                      SlotTime /*now*/, SlotMatching& matching,
                                      Rng& rng,
                                      const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());

  // Within one input, the earliest packet's address cells are at the HOL of
  // every VOQ they occupy (VOQs are FIFO by arrival), so the set of outputs
  // whose HOL time stamp equals the input's minimum is exactly the earliest
  // packet's residue.  Both are maintained by the fabric (hol_min_weight /
  // hol_min_outputs): here the scan is over *all* occupied outputs — no
  // eligibility mask — so the fabric minimum is always the answer.
  order_.clear();
  const PortSet live = PortSet::all(num_inputs) - constraints.failed_inputs;
  for (PortId input : live) {
    const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
    const std::uint64_t smallest = port.hol_min_weight();
    if (smallest == kWeightInfinity) continue;
    order_.push_back(Entry{smallest, rng.next_u64(), input});
  }
  std::sort(order_.begin(), order_.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.shuffle_key < b.shuffle_key;  // random tie order
  });

  for (const Entry& entry : order_) {
    const McVoqInput& port = inputs[static_cast<std::size_t>(entry.input)];
    // Residue of the input's earliest packet: the outputs carrying the
    // input's minimum weight — exactly hol_min_outputs() (queues are
    // frozen during a slot).  A failed output (or dead link) in the
    // residue blocks the whole packet: all-or-nothing means it holds
    // until the fabric recovers.
    const PortSet& residue = port.hol_min_outputs();
    if (residue.empty()) continue;
    const PortSet blocked =
        matching.matched_outputs() | constraints.blocked_outputs(entry.input);
    if (residue.intersects(blocked)) continue;  // all-or-nothing
    for (PortId output : residue) matching.add_match(entry.input, output);
  }

  matching.rounds = 1;
}

}  // namespace fifoms
