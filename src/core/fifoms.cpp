#include "core/fifoms.hpp"

#include <algorithm>

namespace fifoms {

namespace {
constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();
}  // namespace

void FifomsScheduler::reset(int num_inputs, int num_outputs) {
  (void)num_inputs;
  best_timestamp_.assign(static_cast<std::size_t>(num_outputs), kInfinity);
  candidates_.assign(static_cast<std::size_t>(num_outputs), {});
}

void FifomsScheduler::schedule(std::span<const McVoqInput> inputs,
                               SlotTime /*now*/, SlotMatching& matching,
                               Rng& rng) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(static_cast<int>(best_timestamp_.size()) == num_outputs,
                "FifomsScheduler::reset not called for this switch size");

  int rounds = 0;
  while (options_.max_rounds == 0 || rounds < options_.max_rounds) {
    // ---- Request step -------------------------------------------------
    // Each free input selects the HOL address cells with the smallest time
    // stamp among VOQs whose output is still free; those cells request
    // their outputs with the time stamp as weight.
    bool any_request = false;
    for (PortId output = 0; output < num_outputs; ++output) {
      best_timestamp_[static_cast<std::size_t>(output)] = kInfinity;
      candidates_[static_cast<std::size_t>(output)].clear();
    }

    for (PortId input = 0; input < num_inputs; ++input) {
      if (matching.input_matched(input)) continue;  // already sending a cell
      const McVoqInput& port = inputs[static_cast<std::size_t>(input)];

      std::uint64_t smallest = kInfinity;
      for (PortId output = 0; output < num_outputs; ++output) {
        if (matching.output_matched(output) || port.voq_empty(output))
          continue;
        smallest = std::min(smallest, port.hol(output).weight);
      }
      if (smallest == kInfinity) continue;  // nothing eligible at this input

      for (PortId output = 0; output < num_outputs; ++output) {
        if (matching.output_matched(output) || port.voq_empty(output))
          continue;
        if (port.hol(output).weight != smallest) continue;
        any_request = true;
        auto& best = best_timestamp_[static_cast<std::size_t>(output)];
        auto& cands = candidates_[static_cast<std::size_t>(output)];
        if (smallest < best) {
          best = smallest;
          cands.clear();
        }
        if (smallest == best) cands.push_back(input);
      }
    }
    if (!any_request) break;  // converged: no free pair can match
    ++rounds;

    // ---- Grant step ----------------------------------------------------
    // Every output with requests grants the smallest time stamp; ties are
    // broken per the configured policy.  Grants are based purely on the
    // requests collected above, so the outputs decide independently; an
    // input may collect several grants (multicast transmission).
    for (PortId output = 0; output < num_outputs; ++output) {
      const auto& cands = candidates_[static_cast<std::size_t>(output)];
      if (cands.empty()) continue;
      PortId winner;
      if (options_.tie_break == TieBreak::kRandom) {
        winner = cands[rng.next_below(cands.size())];
      } else {
        // Candidates were collected in increasing input order.
        winner = cands.front();
      }
      matching.add_match(winner, output);
    }
  }

  matching.rounds = rounds;
}

void FifomsNoSplitScheduler::reset(int /*num_inputs*/, int /*num_outputs*/) {}

void FifomsNoSplitScheduler::schedule(std::span<const McVoqInput> inputs,
                                      SlotTime /*now*/, SlotMatching& matching,
                                      Rng& rng) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();

  // Within one input, the earliest packet's address cells are at the HOL of
  // every VOQ they occupy (VOQs are FIFO by arrival), so the set of outputs
  // whose HOL time stamp equals the input's minimum is exactly the earliest
  // packet's residue.
  order_.clear();
  for (PortId input = 0; input < num_inputs; ++input) {
    const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
    std::uint64_t smallest = kInfinity;
    for (PortId output = 0; output < num_outputs; ++output) {
      if (port.voq_empty(output)) continue;
      smallest = std::min(smallest, port.hol(output).weight);
    }
    if (smallest == kInfinity) continue;
    order_.push_back(Entry{smallest, rng.next_u64(), input});
  }
  std::sort(order_.begin(), order_.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.shuffle_key < b.shuffle_key;  // random tie order
  });

  for (const Entry& entry : order_) {
    const McVoqInput& port = inputs[static_cast<std::size_t>(entry.input)];
    // Residue of the input's earliest packet.
    PortSet residue;
    bool all_free = true;
    for (PortId output = 0; output < num_outputs; ++output) {
      if (port.voq_empty(output)) continue;
      if (port.hol(output).weight != entry.weight) continue;
      residue.insert(output);
      if (matching.output_matched(output)) all_free = false;
    }
    if (!all_free || residue.empty()) continue;  // all-or-nothing
    for (PortId output : residue) matching.add_match(entry.input, output);
  }

  matching.rounds = 1;
}

}  // namespace fifoms
