#include "core/fifoms.hpp"

#include <algorithm>

namespace fifoms {

namespace {
constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();
}  // namespace

void FifomsScheduler::reset(int num_inputs, int num_outputs) {
  (void)num_inputs;
  num_outputs_ = num_outputs;
  const auto n = static_cast<std::size_t>(num_outputs);
  arena_.reserve(ScratchArena::bytes_for<std::uint64_t>(n) +
                 ScratchArena::bytes_for<PortSet>(n) +
                 ScratchArena::bytes_for<std::uint64_t>(n));
}

void FifomsScheduler::schedule(std::span<const McVoqInput> inputs,
                               SlotTime /*now*/, SlotMatching& matching,
                               Rng& rng,
                               const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(num_outputs_ == num_outputs,
                "FifomsScheduler::reset not called for this switch size");

  arena_.rewind();
  const auto n = static_cast<std::size_t>(num_outputs);
  // Smallest requesting weight per output, and the set of inputs carrying
  // it; both are only valid for outputs in `requested` this round.
  auto best_weight = arena_.take<std::uint64_t>(n);
  auto candidates = arena_.take<PortSet>(n);
  // HOL-weight cache for the input currently scanning (two passes per
  // input: find the minimum, then emit requests at that minimum).
  auto hol_weight = arena_.take<std::uint64_t>(n);

  // The matching arrives cleared (scheduler contract), so every port
  // starts free; grants peel bits off these masks as rounds progress.
  // Failed ports never enter the masks: a dead input sends no requests
  // and a dead output collects none, so degradation is just smaller
  // request/grant sets — the round structure is untouched.
  PortSet free_inputs = PortSet::all(num_inputs) - constraints.failed_inputs;
  PortSet free_outputs =
      PortSet::all(num_outputs) - constraints.failed_outputs;
  const bool link_faults = !constraints.failed_links.empty();
  PortSet requested;

  int rounds = 0;
  while (options_.max_rounds == 0 || rounds < options_.max_rounds) {
    // ---- Request step -------------------------------------------------
    // Each free input selects the HOL address cells with the smallest time
    // stamp among VOQs whose output is still free; those cells request
    // their outputs with the time stamp as weight.  occupied() & free is
    // a four-word AND, so empty and already-matched VOQs cost nothing.
    requested.clear();
    for (PortId input : free_inputs) {
      const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
      PortSet eligible = port.occupied() & free_outputs;
      if (link_faults) eligible -= constraints.link_faults(input);

      std::uint64_t smallest = kInfinity;
      for (PortId output : eligible) {
        const std::uint64_t weight = port.hol(output).weight;
        hol_weight[static_cast<std::size_t>(output)] = weight;
        smallest = std::min(smallest, weight);
      }
      if (smallest == kInfinity) continue;  // nothing eligible at this input

      for (PortId output : eligible) {
        if (hol_weight[static_cast<std::size_t>(output)] != smallest)
          continue;
        const auto o = static_cast<std::size_t>(output);
        if (!requested.contains(output)) {
          requested.insert(output);
          best_weight[o] = smallest;
          candidates[o] = PortSet::single(input);
        } else if (smallest < best_weight[o]) {
          best_weight[o] = smallest;
          candidates[o] = PortSet::single(input);
        } else if (smallest == best_weight[o]) {
          candidates[o].insert(input);
        }
      }
    }
    if (requested.empty()) break;  // converged: no free pair can match
    ++rounds;

    // ---- Grant step ----------------------------------------------------
    // Every output with requests grants the smallest time stamp; ties are
    // broken per the configured policy.  Grants are based purely on the
    // requests collected above, so the outputs decide independently; an
    // input may collect several grants (multicast transmission).
    for (PortId output : requested) {
      const PortSet& cands = candidates[static_cast<std::size_t>(output)];
      PortId winner;
      if (options_.tie_break != TieBreak::kRandom || cands.count() == 1) {
        // Lowest-input policy, or the single-requester fast path: a lone
        // request needs no arbitration (and burns no RNG draw).
        winner = cands.first();
      } else {
        winner = cands.random_member(rng);
      }
      matching.add_match(winner, output);
      free_outputs.erase(output);
      free_inputs.erase(winner);
    }
  }

  matching.rounds = rounds;
}

void FifomsNoSplitScheduler::reset(int /*num_inputs*/, int /*num_outputs*/) {}

void FifomsNoSplitScheduler::schedule(std::span<const McVoqInput> inputs,
                                      SlotTime /*now*/, SlotMatching& matching,
                                      Rng& rng,
                                      const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());

  // Within one input, the earliest packet's address cells are at the HOL of
  // every VOQ they occupy (VOQs are FIFO by arrival), so the set of outputs
  // whose HOL time stamp equals the input's minimum is exactly the earliest
  // packet's residue.
  order_.clear();
  for (PortId input = 0; input < num_inputs; ++input) {
    if (constraints.failed_inputs.contains(input)) continue;
    const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
    std::uint64_t smallest = kInfinity;
    for (PortId output : port.occupied())
      smallest = std::min(smallest, port.hol(output).weight);
    if (smallest == kInfinity) continue;
    order_.push_back(Entry{smallest, rng.next_u64(), input});
  }
  std::sort(order_.begin(), order_.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.shuffle_key < b.shuffle_key;  // random tie order
  });

  for (const Entry& entry : order_) {
    const McVoqInput& port = inputs[static_cast<std::size_t>(entry.input)];
    // Residue of the input's earliest packet.  A failed output (or dead
    // link) in the residue blocks the whole packet: all-or-nothing means
    // it holds until the fabric recovers.
    const PortSet blocked = constraints.blocked_outputs(entry.input);
    PortSet residue;
    bool all_free = true;
    for (PortId output : port.occupied()) {
      if (port.hol(output).weight != entry.weight) continue;
      residue.insert(output);
      if (matching.output_matched(output) || blocked.contains(output))
        all_free = false;
    }
    if (!all_free || residue.empty()) continue;  // all-or-nothing
    for (PortId output : residue) matching.add_match(entry.input, output);
  }

  matching.rounds = 1;
}

}  // namespace fifoms
